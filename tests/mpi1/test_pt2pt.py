"""End-to-end point-to-point semantics over the simulated machine."""

import numpy as np
import pytest

from repro import run_spmd
from repro.config import MachineConfig
from repro.errors import Mpi1Error
from repro.mpi1.pt2pt import wire_size

INTER = MachineConfig(ranks_per_node=1)


def test_wire_size_estimates():
    assert wire_size(None) == 0
    assert wire_size(np.zeros(10, np.int64)) == 80
    assert wire_size(b"abc") == 3
    assert wire_size(7) == 8
    assert wire_size(3.14) == 8
    assert wire_size([1, 2]) == 24
    assert wire_size({"a": 1}) == 24
    assert wire_size(object()) == 64


def test_send_to_unknown_rank():
    def program(ctx):
        if ctx.rank == 0:
            with pytest.raises(Mpi1Error):
                yield from ctx.mpi.send(7, None)
        yield from ctx.coll.barrier()

    run_spmd(program, 2, machine=INTER)


def test_message_order_preserved():
    """Non-overtaking: same (src, tag) arrives in send order."""
    def program(ctx):
        if ctx.rank == 0:
            for i in range(10):
                yield from ctx.mpi.send(1, i, tag=3)
            return None
        got = []
        for _ in range(10):
            got.append((yield from ctx.mpi.recv(0, tag=3)))
        return got

    res = run_spmd(program, 2, machine=INTER)
    assert res.returns[1] == list(range(10))


def test_tags_demultiplex():
    def program(ctx):
        if ctx.rank == 0:
            yield from ctx.mpi.send(1, "a", tag=1)
            yield from ctx.mpi.send(1, "b", tag=2)
            return None
        b = yield from ctx.mpi.recv(0, tag=2)
        a = yield from ctx.mpi.recv(0, tag=1)
        return (a, b)

    res = run_spmd(program, 2, machine=INTER)
    assert res.returns[1] == ("a", "b")


def test_any_source_recv():
    def program(ctx):
        if ctx.rank == 0:
            got = set()
            for _ in range(2):
                got.add((yield from ctx.mpi.recv()))
            return sorted(got)
        yield from ctx.mpi.send(0, ctx.rank * 10)
        return None

    res = run_spmd(program, 3, machine=INTER)
    assert res.returns[0] == [10, 20]


def test_send_buffer_captured_at_send():
    """MPI send-buffer semantics: later writes don't leak into the message."""
    def program(ctx):
        if ctx.rank == 0:
            buf = np.full(8, 1, np.uint8)
            req = yield from ctx.mpi.isend(1, buf)
            buf[:] = 99  # modified after isend
            yield from req.wait()
            return None
        got = yield from ctx.mpi.recv(0)
        return got.tolist()

    res = run_spmd(program, 2, machine=INTER)
    assert res.returns[1] == [1] * 8


def test_issend_completes_only_on_match():
    def program(ctx):
        if ctx.rank == 0:
            t0 = ctx.now
            req = yield from ctx.mpi.issend(1, "hello")
            yield from req.wait()
            return ctx.now - t0
        yield from ctx.compute(40_000)  # receiver is late
        got = yield from ctx.mpi.recv(0)
        assert got == "hello"
        return None

    res = run_spmd(program, 2, machine=INTER)
    assert res.returns[0] > 35_000  # sender waited for the match


def test_standard_eager_send_does_not_wait_for_recv():
    def program(ctx):
        if ctx.rank == 0:
            t0 = ctx.now
            yield from ctx.mpi.send(1, "x")
            sent_at = ctx.now - t0
            yield from ctx.coll.barrier()
            return sent_at
        yield from ctx.compute(50_000)
        yield from ctx.mpi.recv(0)
        yield from ctx.coll.barrier()
        return None

    res = run_spmd(program, 2, machine=INTER)
    assert res.returns[0] < 10_000


def test_rendezvous_data_integrity():
    n = 100_000  # above the eager threshold

    def program(ctx):
        if ctx.rank == 0:
            data = np.arange(n, dtype=np.uint8)
            yield from ctx.mpi.send(1, data)
            return None
        got = yield from ctx.mpi.recv(0)
        return int(got.sum())

    res = run_spmd(program, 2, machine=INTER)
    expected = int(np.arange(n, dtype=np.uint8).sum())
    assert res.returns[1] == expected


def test_rendezvous_waits_for_receiver():
    n = 100_000

    def program(ctx):
        if ctx.rank == 0:
            t0 = ctx.now
            req = yield from ctx.mpi.isend(1, np.zeros(n, np.uint8))
            yield from req.wait()
            return ctx.now - t0
        yield from ctx.compute(60_000)
        yield from ctx.mpi.recv(0)
        return None

    res = run_spmd(program, 2, machine=INTER)
    assert res.returns[0] > 55_000


def test_iprobe_and_improbe_mrecv():
    def program(ctx):
        if ctx.rank == 0:
            yield from ctx.mpi.send(1, "probe-me", tag=6)
            yield from ctx.coll.barrier()
            return None
        yield from ctx.compute(5_000)  # let the message land
        assert ctx.mpi.iprobe(tag=7) is None
        m = ctx.mpi.iprobe(tag=6)
        assert m is not None
        msg = ctx.mpi.improbe(tag=6)
        got = yield from ctx.mpi.mrecv(msg)
        assert ctx.mpi.iprobe(tag=6) is None  # consumed
        yield from ctx.coll.barrier()
        return got

    res = run_spmd(program, 2, machine=INTER)
    assert res.returns[1] == "probe-me"


def test_self_send():
    def program(ctx):
        req = yield from ctx.mpi.isend(ctx.rank, "self", tag=1)
        got = yield from ctx.mpi.recv(ctx.rank, tag=1)
        yield from req.wait()
        return got

    res = run_spmd(program, 2, machine=INTER)
    assert res.returns == ["self", "self"]


def test_request_test_flag():
    def program(ctx):
        if ctx.rank == 0:
            req = ctx.mpi.irecv(1, tag=2)
            assert not req.test()
            yield from ctx.compute(20_000)
            assert req.test()
            return (yield from req.wait())
        yield from ctx.mpi.send(0, 123, tag=2)
        return None

    res = run_spmd(program, 2, machine=INTER)
    assert res.returns[0] == 123


def test_protocol_threshold_is_a_crossover():
    """A well-placed eager threshold means the protocols cost about the
    same right at the switch: the handshake's round trip buys back the
    eager bounce-buffer copy."""
    def timed(nbytes):
        def program(ctx):
            data = np.zeros(nbytes, np.uint8)
            if ctx.rank == 0:
                t0 = ctx.now
                yield from ctx.mpi.send(1, data)
                got = yield from ctx.mpi.recv(1)
                return (ctx.now - t0) / 2
            got = yield from ctx.mpi.recv(0)
            yield from ctx.mpi.send(0, got)
            return None

        return run_spmd(program, 2, machine=INTER).returns[0]

    below = timed(8000)   # eager side of the threshold
    above = timed(8500)   # rendezvous side
    assert abs(above - below) < 1500
    # far from the threshold the regimes differ visibly
    assert timed(64) < below - 1500       # tiny eager much cheaper
    assert timed(65536) > above + 5000    # large rendezvous bandwidth-bound
