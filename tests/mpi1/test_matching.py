"""Pure matching-queue semantics."""

from repro.mpi1.matching import (
    ANY_SOURCE,
    ANY_TAG,
    MatchQueue,
    Message,
    PostedRecv,
)


def _msg(src=0, tag=0, channel="user", payload="x"):
    return Message(src, channel, tag, payload, 8, "eager")


def _recv(src=ANY_SOURCE, tag=ANY_TAG, channel="user"):
    return PostedRecv(src, channel, tag, event=object())


def test_post_then_arrive_matches():
    q = MatchQueue()
    r = _recv()
    assert q.post(r) is None
    assert q.arrive(_msg()) is r
    assert q.depth() == (0, 0)


def test_arrive_then_post_matches_unexpected():
    q = MatchQueue()
    m = _msg(tag=5)
    assert q.arrive(m) is None
    assert q.post(_recv(tag=5)) is m


def test_wildcards():
    q = MatchQueue()
    q.arrive(_msg(src=3, tag=9))
    assert q.post(_recv(src=ANY_SOURCE, tag=9)) is not None
    q.arrive(_msg(src=3, tag=9))
    assert q.post(_recv(src=3, tag=ANY_TAG)) is not None


def test_specific_mismatch_queues():
    q = MatchQueue()
    q.arrive(_msg(src=1, tag=1))
    assert q.post(_recv(src=2, tag=1)) is None  # wrong source
    assert q.depth() == (1, 1)


def test_channel_isolation():
    q = MatchQueue()
    q.arrive(_msg(channel="coll"))
    assert q.post(_recv(channel="user")) is None
    assert q.post(_recv(channel="coll")) is not None


def test_non_overtaking_same_source_tag():
    """Messages from one source with one tag match in arrival order."""
    q = MatchQueue()
    m1, m2 = _msg(payload="first"), _msg(payload="second")
    q.arrive(m1)
    q.arrive(m2)
    assert q.post(_recv()).payload == "first"
    assert q.post(_recv()).payload == "second"


def test_posted_receive_order():
    q = MatchQueue()
    r1, r2 = _recv(), _recv()
    q.post(r1)
    q.post(r2)
    assert q.arrive(_msg()) is r1
    assert q.arrive(_msg()) is r2


def test_probe_nondestructive():
    q = MatchQueue()
    m = _msg(tag=4)
    q.arrive(m)
    assert q.probe(ANY_SOURCE, "user", 4) is m
    assert q.probe(ANY_SOURCE, "user", 4) is m  # still there
    assert q.probe(ANY_SOURCE, "user", 5) is None


def test_extract_removes():
    q = MatchQueue()
    m = _msg(tag=4)
    q.arrive(m)
    assert q.extract(ANY_SOURCE, "user", 4) is m
    assert q.extract(ANY_SOURCE, "user", 4) is None
