"""Perf-regression gate: comparison logic and calibration scaling."""

from repro.bench.perfgate import calibration_rate, compare_reports


def _report(scale=1.0, cal=10_000_000.0, with_figures=True,
            with_scale=False):
    rep = {
        "calibration_rate": cal,
        "kernel": {
            "workloads": [
                {"workload": "ring", "fast_events_per_sec": 800_000 * scale},
                {"workload": "putget_pattern",
                 "fast_events_per_sec": 900_000 * scale},
            ],
            "full_stack": {"events_per_sec": 150_000 * scale},
        },
    }
    if with_figures:
        # Wall time scales inversely with throughput.
        rep["figures"] = {"wall_s": {"fig7a": 40.0 / scale, "fig9": 0.4}}
    if with_scale:
        rep["scale"] = {
            "workload": "fence",
            "ranks_per_sec": {"4Ki": 100_000 * scale,
                              "1Mi": 500_000 * scale},
        }
    return rep


def test_identical_reports_pass():
    failures, lines = compare_reports(_report(), _report())
    assert failures == []
    assert any(line.startswith("ok") and "kernel.ring" in line
               for line in lines)


def test_two_x_slowdown_fails_every_metric():
    failures, _ = compare_reports(_report(), _report(scale=0.5))
    kernel = [f for f in failures if f.startswith("kernel.")]
    assert len(kernel) == 3
    assert all("below floor" in f for f in kernel)
    # The slowdown also inflates the figure wall past its ceiling.
    assert [f for f in failures if f.startswith("figures.fig7a")]


def test_figure_wall_regression_fails():
    slow = _report()
    slow["figures"]["wall_s"]["fig7a"] = 80.0
    failures, _ = compare_reports(_report(), slow)
    assert failures == ["figures.fig7a: 80.00s above ceiling 53.33s "
                        "(>25% throughput drop vs scaled baseline)"]


def test_short_figures_and_missing_figures_are_skipped():
    """Sub-second baselines are noise; kernel-only CI runs lack figures."""
    failures, lines = compare_reports(_report(), _report(with_figures=False))
    assert failures == []
    assert any("skip figures.fig7a" in line for line in lines)
    assert not any("fig9" in line for line in lines)


def test_missing_kernel_metric_fails():
    current = _report()
    current["kernel"]["workloads"].pop(0)
    failures, _ = compare_reports(_report(), current)
    assert failures == ["kernel.ring: missing from current report"]


def test_scale_section_gated_like_kernel_rates():
    base = _report(with_scale=True)
    failures, lines = compare_reports(base, _report(with_scale=True))
    assert failures == []
    assert any(line.startswith("ok") and "scale.1Mi" in line
               for line in lines)
    failures, _ = compare_reports(base, _report(scale=0.5, with_scale=True))
    assert [f for f in failures if f.startswith("scale.")] == [
        "scale.1Mi: 250,000 ranks/s below floor 375,000 "
        "(>25% drop vs scaled baseline)",
        "scale.4Ki: 50,000 ranks/s below floor 75,000 "
        "(>25% drop vs scaled baseline)",
    ]


def test_scale_absent_from_baseline_warns_and_passes():
    # Older baselines predate the scale section; a current report that
    # has one must not fail against them.
    failures, lines = compare_reports(_report(), _report(with_scale=True))
    assert failures == []
    assert any(line == "skip scale: not in baseline" for line in lines)


def test_scale_absent_from_current_warns_and_passes():
    # Scale sweeps are optional in a kernel-only session -- unlike
    # kernel metrics, a missing scale metric is a skip, not a failure.
    failures, lines = compare_reports(_report(with_scale=True), _report())
    assert failures == []
    assert any("skip scale.1Mi: not in current report" in line
               for line in lines)


def test_malformed_kernel_entries_do_not_crash():
    # Hand-edited or truncated reports must degrade to skips/failures,
    # never a KeyError inside the gate.
    current = _report()
    current["kernel"]["workloads"] = [{"workload": "ring"}, {"bogus": 1}]
    current["kernel"]["full_stack"] = {}
    failures, _ = compare_reports(_report(), current)
    assert sorted(failures) == [
        "kernel.full_stack: missing from current report",
        "kernel.putget_pattern: missing from current report",
        "kernel.ring: missing from current report",
    ]
    # Entirely empty current report: everything missing, nothing raised.
    failures, _ = compare_reports(_report(with_scale=True), {})
    assert len([f for f in failures if f.startswith("kernel.")]) == 3
    assert not [f for f in failures if f.startswith("scale.")]


def test_calibration_scales_expectations():
    """A uniformly 2x slower machine passes; the same raw numbers fail
    when the calibration loop says the machine is just as fast."""
    slow_machine = _report(scale=0.5)
    ok, _ = compare_reports(_report(), slow_machine,
                            current_calibration=5_000_000.0)
    assert ok == []
    bad, _ = compare_reports(_report(), slow_machine,
                             current_calibration=10_000_000.0)
    assert len([f for f in bad if f.startswith("kernel.")]) == 3


def test_no_calibration_means_raw_comparison():
    failures, lines = compare_reports(_report(), _report(scale=0.8))
    assert failures == []
    assert lines[0].startswith("machine scale: 1.000")


def test_calibration_rate_is_positive():
    # Tiny iteration count: we only need the plumbing, not a stable rate.
    assert calibration_rate(iters=10_000, best_of=1) > 0


def test_main_exit_codes(tmp_path, capsys):
    import json

    from repro.bench.perfgate import main

    base = tmp_path / "base.json"
    cur = tmp_path / "cur.json"
    base.write_text(json.dumps(_report()))
    cur.write_text(json.dumps(_report()))
    argv = ["--baseline", str(base), "--current", str(cur),
            "--no-calibration"]
    assert main(argv) == 0
    assert "perf gate passed" in capsys.readouterr().out

    cur.write_text(json.dumps(_report(scale=0.5)))
    assert main(argv) == 1
    assert "perf gate FAILED" in capsys.readouterr().out
