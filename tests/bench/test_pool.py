"""Parallel fan-out vs serial: bit-identical results (ISSUE acceptance).

Every comparison here is exact equality -- the pool must return the very
floats/ints the serial loop produces, for clean figure points and for a
fault-injected run alike.
"""

from repro.bench import microbench as mb
from repro.bench import syncbench as sb
from repro.bench.pool import (BenchPoint, default_workers, last_run_stats,
                              run_points)
from repro.config import FaultConfig, FaultPlan, MachineConfig
from repro.runtime.job import run_spmd

INTER = MachineConfig(ranks_per_node=1)


def _faulty_ping(ctx):
    import numpy as np
    win = yield from ctx.rma.win_allocate(64)
    yield from win.lock_all()
    yield from ctx.coll.barrier()
    if ctx.rank == 0:
        data = np.ones(16, np.uint8)
        for _ in range(4):
            yield from win.put(data, 1, 0)
            yield from win.flush(1)
    yield from win.unlock_all()
    yield from ctx.coll.barrier()
    return ctx.now


def _faulty_result(drop_prob):
    """A fault-injected run: drops + deterministic retries (picklable)."""
    res = run_spmd(_faulty_ping, 2, machine=INTER,
                   faults=FaultConfig(plan=FaultPlan(drop_prob=drop_prob)))
    return (res.returns, res.sim_time_ns, res.events_processed, res.stats)


def _figure_points():
    """Points drawn from three different figures + one faulty run."""
    pts = [
        # Figure 4: put/get latency over two transports and sizes
        BenchPoint(mb.put_latency, ("fompi", 8)),
        BenchPoint(mb.put_latency, ("cray22", 4096), {"intra": True}),
        BenchPoint(mb.get_latency, ("upc", 512)),
        # Figure 5: message rate
        BenchPoint(mb.message_rate, ("fompi", 64), {"nmsgs": 50}),
        # Figure 6: atomics + global sync
        BenchPoint(mb.atomic_latency, ("fompi_sum", 64), {"reps": 2}),
        BenchPoint(sb.global_sync_latency, ("fompi", 8)),
        # fault-injected run (deterministic retries, see FaultPlan)
        BenchPoint(_faulty_result, (0.2,)),
    ]
    return pts


def test_parallel_matches_serial_bit_identical():
    serial = run_points(_figure_points(), workers=1, cache=False)
    assert last_run_stats().parallel is False
    parallel = run_points(_figure_points(), workers=4, cache=False)
    stats = last_run_stats()
    assert parallel == serial          # exact: same floats, same counters
    assert stats.points == len(serial)
    assert stats.executed == len(serial)
    assert stats.cache_hits == 0


def test_parallel_path_actually_used():
    """On this platform the pool must really fan out (not fall back)."""
    pts = [BenchPoint(mb.put_latency, ("fompi", s)) for s in (8, 64, 512)]
    out = run_points(pts, workers=4, cache=False)
    assert last_run_stats().parallel is True
    assert out == run_points(pts, workers=1, cache=False)


def test_serial_fallback_on_unpicklable_points():
    """Closures can't cross a process boundary; the sweep must still run."""
    def local_fn(x):
        return x * 3

    pts = [BenchPoint(local_fn, (i,)) for i in range(4)]
    assert run_points(pts, workers=4, cache=False) == [0, 3, 6, 9]
    assert last_run_stats().parallel is False


def test_single_point_runs_in_process():
    pts = [BenchPoint(mb.put_latency, ("fompi", 8))]
    out = run_points(pts, workers=4, cache=False)
    assert last_run_stats().parallel is False
    assert out == [mb.put_latency("fompi", 8)]


def test_faulty_run_reproducible_across_pool():
    """Fault injection derives from the master seed -- process boundary
    must not change drops/retries/times."""
    a = run_points([BenchPoint(_faulty_result, (0.3,))] * 2,
                   workers=1, cache=False)
    b = run_points([BenchPoint(_faulty_result, (0.3,))] * 2,
                   workers=4, cache=False)
    assert a == b
    assert a[0] == a[1]


def test_default_workers_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_WORKERS", "7")
    assert default_workers() == 7
    monkeypatch.setenv("REPRO_BENCH_WORKERS", "not-a-number")
    assert default_workers() >= 1
