"""Harness utilities: Series, tables, geomean, ASCII charts."""

import math

import pytest

from repro.bench.harness import Series, format_series_table, format_table, geomean
from repro.bench.report import ascii_chart


def test_series_add_and_dict():
    s = Series(label="x", meta={"unit": "us"})
    s.add(1, 2.0)
    s.add(10, 3.5)
    d = s.as_dict()
    assert d == {"label": "x", "xs": [1, 10], "ys": [2.0, 3.5], "unit": "us"}


def test_geomean():
    assert geomean([1, 100]) == pytest.approx(10.0)
    assert geomean([]) == 0.0
    assert geomean([0, 4]) == pytest.approx(4.0)  # zeros skipped


def test_format_table_alignment():
    out = format_table("T", ["a", "bb"], [[1, 2.5], [100, 0.001]])
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "bb" in lines[2]
    assert all(len(l) == len(lines[2]) for l in lines[2:])


def test_format_table_float_rendering():
    out = format_table("T", ["v"], [[1234.5678], [0.0001234], [0.0], [3.25]])
    assert "1.23e+03" in out or "1230" in out or "1.23e+03" in out
    assert "0" in out
    assert "3.25" in out


def test_format_series_table_merges_x_axes():
    s1 = Series(label="a", xs=[1, 2], ys=[10, 20])
    s2 = Series(label="b", xs=[2, 3], ys=[200, 300])
    out = format_series_table("T", "x", [s1, s2])
    lines = out.splitlines()
    assert len(lines) == 4 + 3  # header block + 3 x values
    assert "300" in lines[-1]


def test_ascii_chart_renders():
    s1 = Series(label="lin", xs=[1, 10, 100], ys=[1, 10, 100])
    s2 = Series(label="flat", xs=[1, 10, 100], ys=[5, 5, 5])
    out = ascii_chart("C", [s1, s2], width=32, height=8)
    assert "C" in out
    assert "legend:" in out
    assert "o" in out and "x" in out


def test_ascii_chart_empty():
    assert "(no data)" in ascii_chart("E", [Series(label="e")])


def test_ascii_chart_nonpositive_filtered():
    s = Series(label="s", xs=[1, 2], ys=[0, -1])
    assert "(no data)" in ascii_chart("E", [s])
