"""Content-addressed run cache: hits, keying, version invalidation."""

import pytest

import repro.bench.cache as cache_mod
from repro.bench import microbench as mb
from repro.bench.cache import RunCache, cache_enabled, cached_run_spmd
from repro.bench.pool import BenchPoint, last_run_stats, run_points
from repro.config import MachineConfig, SimConfig
from repro.runtime.job import run_spmd


def test_cache_hit_returns_equal_value(tmp_path):
    cache = RunCache(tmp_path)
    cold = run_points([BenchPoint(mb.put_latency, ("fompi", 8)),
                       BenchPoint(mb.put_latency, ("fompi", 64))],
                      workers=1, cache=cache)
    assert last_run_stats().cache_hits == 0
    warm = run_points([BenchPoint(mb.put_latency, ("fompi", 8)),
                       BenchPoint(mb.put_latency, ("fompi", 64))],
                      workers=1, cache=cache)
    assert warm == cold
    assert last_run_stats().cache_hits == 2
    assert last_run_stats().executed == 0
    assert cache.hit_rate == 0.5  # 2 hits / 4 lookups


def test_key_covers_args_kwargs_and_driver(tmp_path):
    cache = RunCache(tmp_path)
    base = cache.key_for(mb.put_latency, ("fompi", 8), {})
    assert cache.key_for(mb.put_latency, ("fompi", 8), {}) == base
    assert cache.key_for(mb.put_latency, ("fompi", 64), {}) != base
    assert cache.key_for(mb.put_latency, ("fompi", 8), {"intra": True}) != base
    assert cache.key_for(mb.get_latency, ("fompi", 8), {}) != base


def test_key_covers_config_snapshot_and_seed(tmp_path):
    cache = RunCache(tmp_path)

    def key(**kw):
        return cache.key_for(mb.put_latency, ("fompi", 8), kw)

    assert key(machine=MachineConfig(ranks_per_node=1)) \
        != key(machine=MachineConfig(ranks_per_node=32))
    assert key(sim=SimConfig(seed=1)) != key(sim=SimConfig(seed=2))


def test_version_bump_invalidates(tmp_path, monkeypatch):
    cache = RunCache(tmp_path)
    key = cache.key_for(mb.put_latency, ("fompi", 8), {})
    cache.put(key, 123.0)
    assert cache.get(key) == 123.0

    monkeypatch.setattr(cache_mod, "__version__", "999.0.0-bumped")
    stale = RunCache(tmp_path)
    # Old entry must read as a miss under the bumped version ...
    assert stale.get(key) is RunCache.MISS
    # ... and a sweep must transparently recompute and repopulate.
    out = run_points([BenchPoint(mb.put_latency, ("fompi", 8))],
                     workers=1, cache=stale)
    assert out == [mb.put_latency("fompi", 8)]
    assert stale.prune_stale() >= 1    # the pre-bump entry is pruned


def test_corrupt_entry_is_a_miss(tmp_path):
    cache = RunCache(tmp_path)
    key = cache.key_for(mb.put_latency, ("fompi", 8), {})
    cache.put(key, 1.0)
    cache._path(key).write_bytes(b"not a pickle")
    assert cache.get(key) is RunCache.MISS


def test_cache_enabled_env(monkeypatch):
    monkeypatch.delenv("REPRO_BENCH_CACHE", raising=False)
    assert cache_enabled() is True
    for off in ("0", "off", "false", "no"):
        monkeypatch.setenv("REPRO_BENCH_CACHE", off)
        assert cache_enabled() is False


def test_cached_run_spmd_roundtrip(tmp_path):
    cache = RunCache(tmp_path)

    res1 = cached_run_spmd(mb_program, 2, cache=cache,
                           machine=MachineConfig(ranks_per_node=1))
    assert cache.misses >= 1 and cache.hits == 0
    res2 = cached_run_spmd(mb_program, 2, cache=cache,
                           machine=MachineConfig(ranks_per_node=1))
    assert cache.hits == 1
    assert res2.returns == res1.returns
    assert res2.sim_time_ns == res1.sim_time_ns
    assert res2.events_processed == res1.events_processed
    # and the cached result really equals a fresh serial run
    fresh = run_spmd(mb_program, 2, machine=MachineConfig(ranks_per_node=1))
    assert fresh.returns == res2.returns
    assert fresh.sim_time_ns == res2.sim_time_ns


def mb_program(ctx):
    yield from ctx.coll.barrier()
    yield from ctx.compute(1_000)
    yield from ctx.coll.barrier()
    return ctx.now


def test_run_points_cache_false_never_touches_disk(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cachedir"))
    run_points([BenchPoint(mb.put_latency, ("fompi", 8))],
               workers=1, cache=False)
    assert not (tmp_path / "cachedir").exists()
