"""Failure injection: erroneous programs must fail loudly, not hang.

The MPI spec forbids cyclically-waiting configurations (paper Section
2.5); the simulator turns them into immediate
:class:`~repro.errors.DeadlockError` / backstop aborts with diagnostics
rather than silent hangs -- these tests inject such bugs on purpose.
"""

import numpy as np
import pytest

from repro import run_spmd
from repro.config import MachineConfig, SimConfig
from repro.errors import (
    DeadlockError,
    LivelockError,
    Mpi1Error,
    RegistrationError,
    SimulationError,
)

INTER = MachineConfig(ranks_per_node=1)


def test_pscw_cyclic_start_deadlocks():
    """Both ranks start() without anyone posting: the forbidden cyclic
    wait -- detected as a deadlock, not a hang."""
    def program(ctx):
        win = yield from ctx.rma.win_allocate(64)
        yield from win.start([1 - ctx.rank])
        yield from win.complete()

    with pytest.raises(DeadlockError) as exc:
        run_spmd(program, 2, machine=INTER)
    assert exc.value.blocked == 2
    # Diagnostics name the stuck ranks and their last API call site.
    assert exc.value.blocked_ranks == ("rank0", "rank1")
    assert exc.value.sites["rank0"] == "win.start(group=[1])"
    assert exc.value.sites["rank1"] == "win.start(group=[0])"
    assert "rank0 [win.start(group=[1])]" in str(exc.value)


def test_recv_without_send_deadlocks():
    def program(ctx):
        if ctx.rank == 0:
            yield from ctx.mpi.recv(1, tag=9)

    with pytest.raises(DeadlockError) as exc:
        run_spmd(program, 2, machine=INTER)
    assert exc.value.blocked_ranks == ("rank0",)
    assert exc.value.sites["rank0"] == "mpi.recv(src=1, tag=9)"


def test_mismatched_collective_deadlocks():
    """One rank skips a barrier: classic SPMD bug."""
    def program(ctx):
        if ctx.rank != 1:
            yield from ctx.coll.barrier()

    with pytest.raises(DeadlockError):
        run_spmd(program, 3, machine=INTER)


def test_lock_livelock_hits_backstop():
    """A never-released exclusive lock spins the waiter forever.  The
    progress watchdog converts this into a :class:`LivelockError` naming
    the spinning ranks -- in a small fraction of the 40k-event budget the
    ``max_events`` backstop used to need."""
    def program(ctx):
        win = yield from ctx.rma.win_allocate(64)
        yield from ctx.coll.barrier()
        from repro.rma.enums import LockType

        if ctx.rank == 0:
            yield from win.lock(2, LockType.EXCLUSIVE)
            # bug: never unlocks; rank 1 retries forever
            yield from ctx.compute(1)
        else:
            yield from ctx.compute(5_000)
            yield from win.lock(2, LockType.EXCLUSIVE)
            yield from win.unlock(2)

    with pytest.raises(LivelockError) as exc:
        run_spmd(program, 3, machine=INTER,
                 sim=SimConfig(max_events=40_000))
    # Detected far earlier than the 40k max_events backstop ...
    assert exc.value.events < 4_000
    # ... and the diagnostic names the rank spinning in lock().
    assert "rank1" in exc.value.blocked_ranks
    assert "win.lock" in exc.value.sites["rank1"]


def test_watchdog_can_be_disabled():
    """watchdog_interval=0 restores the old backstop-only behaviour."""
    def program(ctx):
        win = yield from ctx.rma.win_allocate(64)
        yield from ctx.coll.barrier()
        from repro.rma.enums import LockType

        if ctx.rank == 0:
            yield from win.lock(1, LockType.EXCLUSIVE)
            yield from ctx.compute(1)
        else:
            yield from ctx.compute(5_000)
            yield from win.lock(1, LockType.EXCLUSIVE)

    with pytest.raises(SimulationError, match="max_events"):
        run_spmd(program, 2, machine=INTER,
                 sim=SimConfig(max_events=40_000, watchdog_interval=0))


def test_stale_descriptor_after_deregistration():
    """Using a raw DMAPP descriptor after the owner deregistered is the
    bug the dynamic-window cache protocol exists to prevent."""
    def program(ctx):
        seg = ctx.space.alloc(64)
        desc = ctx.reg.register(seg)
        descs = yield from ctx.coll.allgather(desc)
        yield from ctx.coll.barrier()
        if ctx.rank == 1:
            ctx.reg.deregister(desc)
        yield from ctx.coll.barrier()
        if ctx.rank == 0:
            with pytest.raises(RegistrationError):
                yield from ctx.dmapp.put_nbi(descs[1], 0,
                                             np.zeros(8, np.uint8))
        yield from ctx.coll.barrier()

    run_spmd(program, 2, machine=INTER)


def test_send_to_invalid_rank():
    def program(ctx):
        with pytest.raises(Mpi1Error):
            yield from ctx.mpi.send(99, "x")
        yield from ctx.coll.barrier()

    run_spmd(program, 2, machine=INTER)


def test_application_exception_propagates_with_rank_context():
    def program(ctx):
        yield from ctx.coll.barrier()
        if ctx.rank == 2:
            raise ValueError("injected application bug")
        yield from ctx.coll.barrier()

    with pytest.raises(ValueError, match="injected application bug"):
        run_spmd(program, 4, machine=INTER)


def test_full_stack_determinism():
    """Same seed => bit-identical behaviour across the whole stack
    (MILC solve: times, event counts, results)."""
    from repro.apps.milc import MilcSpec, milc_program

    spec = MilcSpec(local=(4, 4, 4, 4), maxiter=10, tol=0.0)

    def once():
        res = run_spmd(milc_program, 4, spec, "rma", machine=INTER)
        return (res.sim_time_ns, res.events_processed,
                [r[:3] for r in res.returns])

    assert once() == once()


def test_seed_changes_application_randomness():
    from repro.apps.dsde.common import make_targets

    t1 = make_targets(1, 0, 32, 6)
    t2 = make_targets(2, 0, 32, 6)
    assert t1 != t2
