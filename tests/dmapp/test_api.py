"""DMAPP endpoint semantics: completion ordering, handles, gsync."""

import numpy as np
import pytest

from repro import run_spmd
from repro.config import MachineConfig
from repro.dmapp.amo import AMO_OPS, amo_supported
from repro.errors import SimulationError

INTER = MachineConfig(ranks_per_node=1)


def _with_window(body):
    """Boilerplate: register a 256-B segment on every rank."""
    def program(ctx):
        seg = ctx.space.alloc(256, label="buf")
        desc = ctx.reg.register(seg)
        descs = yield from ctx.coll.allgather(desc)
        yield from ctx.coll.barrier()
        out = yield from body(ctx, seg, descs)
        yield from ctx.coll.barrier()
        return out

    return program


def test_amo_supported_predicate():
    assert amo_supported("add", 8)
    assert amo_supported("cas", 8)
    assert not amo_supported("add", 4)   # 8-byte only
    assert not amo_supported("min", 8)   # not in the NIC set
    assert "min" not in AMO_OPS


def test_put_data_captured_at_issue():
    def body(ctx, seg, descs):
        if ctx.rank == 0:
            buf = np.full(8, 1, np.uint8)
            yield from ctx.dmapp.put_nbi(descs[1], 0, buf)
            buf[:] = 77  # mutate after issue
            yield from ctx.dmapp.gsync()
        yield from ctx.coll.barrier()
        return seg.read(0, 8).tolist()

    res = run_spmd(_with_window(body), 2, machine=INTER)
    assert res.returns[1] == [1] * 8


def test_gsync_guarantees_visibility():
    def body(ctx, seg, descs):
        if ctx.rank == 0:
            yield from ctx.dmapp.put_nbi(descs[1], 0, np.full(8, 9, np.uint8))
            yield from ctx.dmapp.gsync()
            # after gsync the remote memory is committed
            return ctx.world.spaces[1].segments[
                descs[1].seg_id].read(0, 8).tolist()
        yield from ctx.compute(1)
        return None

    res = run_spmd(_with_window(body), 2, machine=INTER)
    assert res.returns[0] == [9] * 8


def test_put_not_visible_before_delivery():
    def body(ctx, seg, descs):
        if ctx.rank == 0:
            yield from ctx.dmapp.put_nbi(descs[1], 0, np.full(8, 5, np.uint8))
            # immediately after issue the data is still in flight
            early = ctx.world.spaces[1].segments[
                descs[1].seg_id].read(0, 1)[0]
            yield from ctx.dmapp.gsync()
            late = ctx.world.spaces[1].segments[
                descs[1].seg_id].read(0, 1)[0]
            return int(early), int(late)
        yield from ctx.compute(1)
        return None

    res = run_spmd(_with_window(body), 2, machine=INTER)
    assert res.returns[0] == (0, 5)


def test_explicit_handle_wait():
    def body(ctx, seg, descs):
        if ctx.rank == 0:
            h = yield from ctx.dmapp.put_nb(descs[1], 4, np.full(4, 3, np.uint8))
            assert h.remote_complete > ctx.now  # still in flight
            yield from ctx.dmapp.wait(h)
            assert ctx.now >= h.remote_complete
            yield from ctx.dmapp.wait_local(h)  # no-op after remote
        yield from ctx.coll.barrier()
        return seg.read(4, 4).tolist()

    res = run_spmd(_with_window(body), 2, machine=INTER)
    assert res.returns[1] == [3] * 4


def test_get_out_buffer_size_checked():
    def body(ctx, seg, descs):
        if ctx.rank == 0:
            out = np.zeros(4, np.uint8)
            with pytest.raises(SimulationError):
                yield from ctx.dmapp.get_nbi(descs[1], 0, 8, out=out)
        yield from ctx.compute(1)
        return None

    run_spmd(_with_window(body), 2, machine=INTER)


def test_large_put_chunked():
    from repro.machine.params import GeminiParams

    n = 3 * (1 << 20) + 5  # > 3 chunks at max_chunk = 1 MiB

    def program(ctx):
        seg = ctx.space.alloc(n)
        desc = ctx.reg.register(seg)
        descs = yield from ctx.coll.allgather(desc, nbytes=32)
        yield from ctx.coll.barrier()
        if ctx.rank == 0:
            data = (np.arange(n) % 251).astype(np.uint8)
            yield from ctx.dmapp.put_nbi(descs[1], 0, data)
            yield from ctx.dmapp.gsync()
        yield from ctx.coll.barrier()
        return int(seg.typed(np.uint8).sum()) if ctx.rank == 1 else None

    res = run_spmd(program, 2, machine=INTER)
    expected = int(((np.arange(n) % 251).astype(np.uint64)).sum())
    assert res.returns[1] == expected


def test_amo_stream_empty_rejected():
    from repro.mem.atomic import AtomicArray
    from repro.runtime.job import Job, run_on_world

    job = Job(nranks=2, machine=INTER)
    world = job.build_world()
    cells = AtomicArray(world.env, 4)

    def program(ctx):
        if ctx.rank == 0:
            with pytest.raises(SimulationError):
                yield from ctx.dmapp.amo_stream_nbi(1, cells, 0, "add", [])
        yield from ctx.coll.barrier()

    run_on_world(world, program)


def test_ops_issued_counter():
    def body(ctx, seg, descs):
        if ctx.rank == 0:
            for _ in range(3):
                yield from ctx.dmapp.put_nbi(descs[1], 0,
                                             np.zeros(8, np.uint8))
            yield from ctx.dmapp.gsync()
            return ctx.dmapp.ops_issued
        yield from ctx.compute(1)
        return None

    res = run_spmd(_with_window(body), 2, machine=INTER)
    assert res.returns[0] == 3


def test_completion_horizon_monotone():
    def body(ctx, seg, descs):
        if ctx.rank == 0:
            h1 = yield from ctx.dmapp.put_nbi(descs[1], 0,
                                              np.zeros(8, np.uint8))
            hz1 = ctx.dmapp.completion_horizon
            yield from ctx.dmapp.put_nbi(descs[1], 0, np.zeros(8, np.uint8))
            hz2 = ctx.dmapp.completion_horizon
            assert hz2 >= hz1 >= h1.local_complete
            yield from ctx.dmapp.gsync()
            assert ctx.now >= hz2
        yield from ctx.compute(1)
        return None

    run_spmd(_with_window(body), 2, machine=INTER)
