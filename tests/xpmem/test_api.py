"""XPMEM substrate unit tests."""

import numpy as np
import pytest

from repro import run_spmd
from repro.config import MachineConfig
from repro.machine.params import XpmemParams

INTRA = MachineConfig(ranks_per_node=8)


def test_store_then_load_roundtrip():
    def prog(ctx):
        seg = ctx.space.alloc(64)
        token = ctx.xpmem.expose(seg)
        tokens = yield from ctx.coll.allgather(token)
        yield from ctx.coll.barrier()
        out = None
        if ctx.rank == 0:
            att = ctx.xpmem.attach(tokens[1])
            yield from ctx.xpmem.store(att, 4, np.arange(8, dtype=np.uint8))
            got = yield from ctx.xpmem.load(att, 4, 8)
            out = got.tolist()
        yield from ctx.coll.barrier()
        return out

    res = run_spmd(prog, 2, machine=INTRA)
    assert res.returns[0] == list(range(8))


def test_store_cheap_load_pays_latency():
    p = XpmemParams()

    def program(ctx):
        seg = ctx.space.alloc(64)
        token = ctx.xpmem.expose(seg)
        tokens = yield from ctx.coll.allgather(token)
        yield from ctx.coll.barrier()
        out = None
        if ctx.rank == 0:
            att = ctx.xpmem.attach(tokens[1])
            t0 = ctx.now
            yield from ctx.xpmem.store(att, 0, np.zeros(8, np.uint8))
            t_store = ctx.now - t0
            t0 = ctx.now
            yield from ctx.xpmem.load(att, 0, 8)
            t_load = ctx.now - t0
            out = (t_store, t_load)
        yield from ctx.coll.barrier()
        return out

    t_store, t_load = run_spmd(program, 2, machine=INTRA).returns[0]
    assert t_store < p.latency / 2     # write-behind
    assert t_load >= p.latency         # cache-miss chain


def test_copy_bandwidth():
    n = 256 * 1024
    p = XpmemParams()

    def program(ctx):
        seg = ctx.space.alloc(n)
        token = ctx.xpmem.expose(seg)
        tokens = yield from ctx.coll.allgather(token)
        yield from ctx.coll.barrier()
        out = None
        if ctx.rank == 0:
            att = ctx.xpmem.attach(tokens[1])
            t0 = ctx.now
            yield from ctx.xpmem.store(att, 0, np.zeros(n, np.uint8))
            out = ctx.now - t0
        yield from ctx.coll.barrier()
        return out

    t = run_spmd(program, 2, machine=INTRA).returns[0]
    expected = n * p.copy_per_byte
    assert abs(t - expected) < 0.1 * expected  # ~40 us for 256 KiB


def test_cpu_amo_on_shared_cells():
    from repro.mem.atomic import AtomicArray
    from repro.runtime.job import Job, run_on_world

    job = Job(nranks=4, machine=INTRA)
    world = job.build_world()
    cells = AtomicArray(world.env, 2, name="shared")

    def program(ctx):
        old = yield from ctx.xpmem.amo(cells, 0, "add", 1)
        yield from ctx.coll.barrier()
        return int(old)

    res = run_on_world(world, program)
    assert sorted(res.returns) == [0, 1, 2, 3]
    assert cells.load(0) == 4


def test_amo_stream_fetch():
    from repro.mem.atomic import AtomicArray
    from repro.runtime.job import Job, run_on_world

    job = Job(nranks=1, machine=INTRA)
    world = job.build_world()
    cells = AtomicArray(world.env, 4)

    def program(ctx):
        old = yield from ctx.xpmem.amo_stream(cells, 0, "add",
                                              [1, 2, 3, 4], fetch=True)
        return old.tolist()

    res = run_on_world(world, program)
    assert res.returns[0] == [0, 0, 0, 0]
    assert cells.snapshot() == [1, 2, 3, 4]


def test_mfence_is_instant_generator():
    def program(ctx):
        t0 = ctx.now
        yield from ctx.xpmem.mfence()
        return ctx.now - t0

    assert run_spmd(program, 1, machine=INTRA).returns[0] == 0
