"""Calibration: the simulated microbenchmarks must land on the paper's
measured performance functions (Section 3) within tolerance.

These are the reproduction's keystone tests: they tie every subsequent
figure to the paper's numbers.
"""

import pytest

from repro.bench import microbench as mb
from repro.bench import syncbench as sb
from repro.models.fitting import fit_affine, fit_log_linear, relative_error
from repro.models.params_fompi import paper_model

TOL = 0.25  # 25% tolerance on constants; shapes must be much tighter


# ---------------------------------------------------------------------------
# P_put = 0.16 ns/B * s + 1.0 us ; P_get = 0.17 ns/B * s + 1.9 us
# ---------------------------------------------------------------------------
def test_put_latency_function():
    sizes = [8, 512, 8192, 65536]
    lats = [mb.put_latency("fompi", s) for s in sizes]
    a, b = fit_affine(sizes, lats)
    assert relative_error(a, 1000.0) < TOL, (a, b)
    assert relative_error(b, 0.16) < TOL, (a, b)


def test_get_latency_function():
    sizes = [8, 512, 8192, 65536]
    lats = [mb.get_latency("fompi", s) for s in sizes]
    a, b = fit_affine(sizes, lats)
    assert relative_error(a, 1900.0) < TOL, (a, b)
    assert relative_error(b, 0.17) < TOL, (a, b)


def test_latency_ordering_small_messages():
    """Figure 4a at 8 B: foMPI < MPI-1 < UPC < CAF << MPI-2.2."""
    lat = {t: mb.put_latency(t, 8) for t in mb.LATENCY_TRANSPORTS}
    assert lat["fompi"] < lat["mpi1"] < lat["upc"] < lat["caf"] < lat["cray22"]


def test_bandwidth_converges_at_large_messages():
    """All transports approach wire bandwidth for 256 KiB transfers."""
    size = 256 * 1024
    lats = {t: mb.put_latency(t, size) for t in ("fompi", "upc", "cray22")}
    wire = size * 0.16
    for t, lat in lats.items():
        assert lat < wire * 1.6, (t, lat, wire)


def test_intra_node_put_faster_than_inter():
    intra = mb.put_latency("fompi", 8, intra=True)
    inter = mb.put_latency("fompi", 8, intra=False)
    assert intra < 0.4 * inter
    assert 100 <= intra <= 700  # well below inter-node (Figure 4c)


def test_intra_node_get_pays_cache_latency():
    lat = mb.get_latency("fompi", 8, intra=True)
    assert 250 <= lat <= 700  # ~0.35-0.4 us floor (Figure 4c)


# ---------------------------------------------------------------------------
# message rates: 416 ns inter-node, 80 ns intra-node per 8-B message
# ---------------------------------------------------------------------------
def test_message_rate_inter_node():
    rate = mb.message_rate("fompi", 8, nmsgs=500)
    assert relative_error(rate, 1e9 / 416) < TOL, rate


def test_message_rate_intra_node():
    rate = mb.message_rate("fompi", 8, intra=True, nmsgs=500)
    assert relative_error(rate, 1e9 / 80) < 0.6, rate  # ~12.5 M/s


def test_message_rate_bandwidth_limited_large():
    r64k = mb.message_rate("fompi", 65536, nmsgs=300)
    bandwidth_bound = 1e9 / (65536 * 0.16)
    assert relative_error(r64k, bandwidth_bound) < 0.3, r64k


# ---------------------------------------------------------------------------
# overlap (Figure 5a): ramps up with size; MPI-2.2 higher at small sizes
# ---------------------------------------------------------------------------
def test_overlap_ramps_with_size():
    small = mb.overlap_fraction("fompi", 64)
    large = mb.overlap_fraction("fompi", 262144)
    assert large > 0.85
    assert small < large


def test_cray22_overlap_higher_at_small_sizes():
    fompi = mb.overlap_fraction("fompi", 64)
    cray = mb.overlap_fraction("cray22", 64)
    assert cray > fompi


# ---------------------------------------------------------------------------
# atomics (Figure 6a)
# ---------------------------------------------------------------------------
def test_atomic_sum_model():
    ns = [1, 64, 1024]
    lats = [mb.atomic_latency("fompi_sum", n) for n in ns]
    a, b = fit_affine(ns, lats)
    assert relative_error(a, 2400.0) < TOL, (a, b)
    assert relative_error(b, 28.0) < TOL, (a, b)


def test_atomic_cas_constant():
    lat = mb.atomic_latency("fompi_cas", 1)
    assert relative_error(lat, 2400.0) < TOL, lat


def test_atomic_min_fallback_base():
    lat = mb.atomic_latency("fompi_min", 1)
    assert relative_error(lat, 7300.0) < 0.35, lat


def test_atomic_crossover_min_beats_sum():
    """The locked (fallback) protocol exhibits higher bandwidth."""
    n = 65536
    t_min = mb.atomic_latency("fompi_min", n, reps=1)
    t_sum = mb.atomic_latency("fompi_sum", n, reps=1)
    assert t_min < t_sum


def test_upc_aadd_close_to_fompi_sum():
    upc = mb.atomic_latency("upc_aadd", 1)
    fompi = mb.atomic_latency("fompi_sum", 1)
    assert relative_error(upc, fompi) < 0.2


# ---------------------------------------------------------------------------
# P_fence = 2.9 us * log2 p (Figure 6b)
# ---------------------------------------------------------------------------
def test_fence_model():
    ps = [2, 8, 32, 128]
    lats = [sb.global_sync_latency("fompi", p) for p in ps]
    a, b = fit_log_linear(ps, lats)
    assert relative_error(b, 2900.0) < TOL, (a, b)


def test_global_sync_ordering():
    """Figure 6b ordering at moderate p: upc < caf < fompi < cray22."""
    p = 32
    lat = {t: sb.global_sync_latency(t, p)
           for t in ("fompi", "upc", "caf", "cray22")}
    assert lat["upc"] < lat["caf"] < lat["fompi"] < lat["cray22"]


# ---------------------------------------------------------------------------
# PSCW (Figure 6c): foMPI ~constant, Cray grows
# ---------------------------------------------------------------------------
def test_pscw_fompi_roughly_constant():
    t8 = sb.pscw_ring_latency("fompi", 8, ranks_per_node=1)
    t64 = sb.pscw_ring_latency("fompi", 64, ranks_per_node=1)
    assert t64 < t8 * 2.0, (t8, t64)


def test_pscw_total_cost_near_paper_sum():
    """P_post + P_start + P_complete + P_wait at k=2 ~ 0.7+1.8+2*0.7 us."""
    t = sb.pscw_ring_latency("fompi", 8, ranks_per_node=1)
    paper = (paper_model("post")(k=2) + paper_model("complete")(k=2)
             + paper_model("start")() + paper_model("wait")())
    assert relative_error(t, paper) < 0.8, (t, paper)


def test_pscw_cray_grows():
    t4 = sb.pscw_ring_latency("cray22", 4, ranks_per_node=1)
    t64 = sb.pscw_ring_latency("cray22", 64, ranks_per_node=1)
    assert t64 > t4 * 1.2


# ---------------------------------------------------------------------------
# lock constants (Section 3.2)
# ---------------------------------------------------------------------------
def test_lock_constants():
    c = sb.lock_constants()
    assert relative_error(c["lock_excl"], 5400.0) < TOL, c
    assert relative_error(c["lock_shrd"], 2700.0) < TOL, c
    assert relative_error(c["lock_all"], 2700.0) < TOL, c
    assert relative_error(c["unlock"], 400.0) < 0.4, c
    # last exclusive unlock pays one extra atomic (paper Section 2.3)
    assert 1.6 <= c["unlock_excl_last"] / c["unlock"] <= 2.4, c
    assert c["flush"] <= 200.0, c          # P_flush = 76 ns (nothing pending)
    assert c["sync"] <= 60.0, c            # P_sync = 17 ns
    # exclusive ~ 2x shared (two AMOs vs one)
    assert 1.6 <= c["lock_excl"] / c["lock_shrd"] <= 2.4
