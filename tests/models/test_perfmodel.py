"""Unit tests for the performance-model objects."""

import math

import pytest

from repro.models.fitting import fit_affine, fit_log_linear, relative_error
from repro.models.loggp import LogGPModel
from repro.models.params_fompi import PAPER_MODELS, paper_model
from repro.models.perfmodel import (
    AffineBytesModel,
    ConstantModel,
    LinearNeighborsModel,
    LogProcsModel,
    prefer_pscw,
)


def test_constant_model():
    m = ConstantModel("P_CAS", 2400.0)
    assert m() == 2400.0
    assert m.domain_str() == "P:{} -> T"


def test_affine_model():
    m = AffineBytesModel("P_put", 1000.0, 0.16)
    assert m(s=0) == 1000.0
    assert m(s=1000) == 1160.0
    assert m.domain_str() == "P:{s} -> T"


def test_log_model():
    m = LogProcsModel("P_fence", 0.0, 2900.0)
    assert m(p=2) == 2900.0
    assert m(p=1024) == 2900.0 * 10


def test_neighbor_model():
    m = LinearNeighborsModel("P_post", 0.0, 350.0)
    assert m(k=6) == 2100.0


def test_missing_input_raises():
    with pytest.raises(ValueError, match="needs input"):
        AffineBytesModel("x", 1, 1)()


def test_sum_model_composes_domains():
    m = paper_model("put") + paper_model("fence")
    assert set(m.domain) == {"s", "p"}
    assert m(s=8, p=4) == pytest.approx(
        paper_model("put")(s=8) + paper_model("fence")(p=4))


def test_paper_models_complete():
    for key in ("put", "get", "acc_sum", "acc_min", "cas", "fence", "post",
                "complete", "start", "wait", "lock_excl", "lock_shrd",
                "unlock", "flush", "sync"):
        assert key in PAPER_MODELS


def test_paper_model_unknown_raises():
    with pytest.raises(KeyError):
        paper_model("nope")


def test_prefer_pscw_decision_rule():
    """Section 6: fence wins only for large groups relative to log p."""
    # Small neighborhood on many processes: PSCW much cheaper.
    assert prefer_pscw(PAPER_MODELS, p=4096, k=2)
    # Tiny job where fence is one round: fence is cheaper than
    # post+complete+start+wait for a large k.
    assert not prefer_pscw(PAPER_MODELS, p=2, k=16)


def test_fit_affine_recovers_constants():
    xs = [8, 64, 512, 4096, 32768]
    ys = [1000 + 0.16 * x for x in xs]
    a, b = fit_affine(xs, ys)
    assert a == pytest.approx(1000, rel=1e-6)
    assert b == pytest.approx(0.16, rel=1e-6)


def test_fit_log_linear_recovers_constants():
    ps = [2, 8, 64, 1024]
    ys = [100 + 2900 * math.log2(p) for p in ps]
    a, b = fit_log_linear(ps, ys)
    assert a == pytest.approx(100, rel=1e-3, abs=1)
    assert b == pytest.approx(2900, rel=1e-6)


def test_relative_error():
    assert relative_error(110, 100) == pytest.approx(0.1)
    assert relative_error(0, 0) == 0.0
    assert relative_error(1, 0) == math.inf


def test_loggp_basics():
    m = LogGPModel(L=500, o=400, g=400, G=0.16, P=8)
    assert m.point_to_point(0) == 1300
    assert m.message_rate(8) == pytest.approx(1e9 / 400)
    assert m.dissemination_barrier() == 3 * 1300


def test_loggp_from_gemini():
    from repro.machine.params import GeminiParams

    g = GeminiParams()
    m = LogGPModel.from_gemini(g, P=16, hops=2)
    assert m.o == g.o_inject
    assert m.L == g.wire_latency(2)
