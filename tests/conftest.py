"""Shared fixtures for the test suite."""

import pytest

from repro.sim.kernel import Environment


@pytest.fixture
def env():
    """A fresh strict DES environment."""
    return Environment()
