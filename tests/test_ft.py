"""Rollback recovery (repro.ft): checkpointing, put-logging, restart.

The contract under test is *crash to completion*: a run that loses a
rank mid-flight finishes anyway, and its final application state is
bit-identical to the fault-free run of the same seed -- under both
``spare`` (adopt an idle node) and ``shrink`` (re-home onto the buddy)
recovery, for any crash rank, deterministically.
"""

import pytest

from repro import run_spmd
from repro.config import CheckConfig, FTConfig, NodeCrash, SimConfig
from repro.errors import FaultError, FTError
from repro.ft.workloads import (
    ft_faults,
    ft_hashtable,
    ft_machine,
    run_crash_to_completion,
    run_reference,
    run_spmd_ft,
    soak,
    table_bytes,
)

NRANKS, INSERTS = 4, 4


# ---------------------------------------------------------------------------
# crash to completion
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("mode", ["spare", "shrink"])
@pytest.mark.parametrize("crash_rank", [0, 2])
def test_crash_to_completion_bit_identical(crash_rank, mode):
    """A mid-run crash of any rank -- including rank 0, who owns the
    master lock word and the completion counter -- recovers to the exact
    fault-free final table."""
    out = run_crash_to_completion(NRANKS, INSERTS, crash_rank=crash_rank,
                                  mode=mode)
    assert out.match, f"recovered table diverged ({crash_rank}/{mode})"
    row = out.stats_row()
    assert row["ranks_restored"] == 1
    ft = row["ft"]
    assert ft["restores"] == 1
    assert ft["unrecoverable"] == 0
    if mode == "spare":
        assert ft["spares_used"] == 1


def test_same_seed_rerun_bit_identical():
    """The recovered schedule itself is deterministic: same seed, same
    crash, bit-identical returns / clock / event count."""
    runs = [run_crash_to_completion(NRANKS, INSERTS, seed=77,
                                    crash_rank=1, mode="spare")
            for _ in range(2)]
    a, b = (r.recovered for r in runs)
    assert table_bytes(a) == table_bytes(b)
    assert a.sim_time_ns == b.sim_time_ns
    assert a.events_processed == b.events_processed


def test_checkpointing_does_not_change_the_answer():
    """FT-on fault-free runs pay overhead in time only: the final table
    matches the FT-off baseline bit for bit."""
    base = run_reference(NRANKS, INSERTS, ft_on=False)
    ft = run_reference(NRANKS, INSERTS, ft_on=True)
    assert table_bytes(base) == table_bytes(ft)
    assert ft.stats["ft"]["checkpoints_taken"] > 0
    assert "ft" not in base.stats


def _uncheckpointed_victim_program(ctx):
    import numpy as np
    win = yield from ctx.rma.win_allocate(256)
    ctx.ft.protect(win)
    yield from win.lock_all()
    if ctx.rank != 2:
        yield from ctx.ft.checkpoint(win, {"win_id": win.win_id})
    data = np.ones(8, np.uint8)
    for i in range(50):
        yield from win.put(data, 2, 8 * ((i + ctx.rank) % 16))
        yield from win.flush(2)
    yield from win.unlock_all()
    return "ok"


def test_crash_without_checkpoint_is_unrecoverable_but_terminates():
    """Rank 2 dies having never checkpointed: no restart is possible,
    but survivors must terminate with structured errors -- paused origins
    re-raise instead of waiting for a restore that can never happen."""
    faults = ft_faults(crashes=(NodeCrash(2, 30_000),), mode="spare")
    res = run_spmd(_uncheckpointed_victim_program, NRANKS,
                   machine=ft_machine(), sim=SimConfig(seed=SimConfig.seed),
                   faults=faults)
    assert all(isinstance(r, FaultError) for r in res.returns)
    assert res.stats["ft"]["restores"] == 0


def test_crash_recovery_is_checker_clean():
    """The restore path (snapshot rollback + log replay + respawn) must
    not fabricate RMA memory-model violations: the happens-before edges
    installed at restore keep the checker clean."""
    faults = ft_faults(crashes=(NodeCrash(2, 13_000),), mode="spare")
    res = run_spmd(ft_hashtable, NRANKS, NRANKS * INSERTS, INSERTS,
                   machine=ft_machine(), sim=SimConfig(seed=SimConfig.seed),
                   faults=faults, check=CheckConfig(enabled=True))
    assert res.stats["ft"]["restores"] == 1
    assert res.check is not None and res.check.clean, \
        [v.describe() for v in res.check.violations]


def test_soak_smoke():
    """Two seeded randomized schedules recover to the fault-free state
    (the CI job runs more)."""
    rows = soak(2)
    assert all(r["match"] for r in rows)
    # Derived schedules are themselves deterministic.
    assert soak(2) == rows


# ---------------------------------------------------------------------------
# win_free vs in-flight checkpoints (satellite 6)
# ---------------------------------------------------------------------------
def _free_mid_deposit_program(ctx):
    win = yield from ctx.rma.win_allocate(512)
    ctx.ft.protect(win)
    yield from ctx.ft.checkpoint(win, {"win_id": win.win_id})
    # Free immediately: the buddy replica packet is still on the wire.
    yield from win.free()
    return "ok"


def test_win_free_cancels_inflight_replica():
    """Freeing a window while its checkpoint replica is still in flight
    cancels the deposit (the late packet commits nothing) and releases
    every buddy-side byte."""
    res = run_spmd(_free_mid_deposit_program, NRANKS,
                   machine=ft_machine(), faults=ft_faults())
    assert list(res.returns) == ["ok"] * NRANKS
    ft = res.stats["ft"]
    assert ft["checkpoints_taken"] == NRANKS
    assert ft["checkpoints_cancelled"] == NRANKS
    assert ft["replicas_arrived"] == 0
    assert ft["buddy_bytes"] == 0
    assert ft["log_entries"] == 0


def _free_after_commit_program(ctx):
    win = yield from ctx.rma.win_allocate(512)
    ctx.ft.protect(win)
    yield from ctx.ft.checkpoint(win, {"win_id": win.win_id})
    yield from ctx.compute(50_000)  # let the replica arrive and commit
    yield from win.free()
    return "ok"


def test_win_free_releases_committed_buddy_memory():
    res = run_spmd(_free_after_commit_program, NRANKS,
                   machine=ft_machine(), faults=ft_faults())
    assert list(res.returns) == ["ok"] * NRANKS
    ft = res.stats["ft"]
    assert ft["replicas_arrived"] == NRANKS
    assert ft["checkpoints_cancelled"] == 0
    assert ft["buddy_bytes"] == 0


# ---------------------------------------------------------------------------
# guards
# ---------------------------------------------------------------------------
def _adopt_unknown_program(ctx):
    yield from ctx.coll.barrier()
    try:
        ctx.ft.adopt(99)
    except FTError:
        return "guarded"
    return "missed"


def test_adopt_unknown_window_raises():
    res = run_spmd(_adopt_unknown_program, 2, machine=ft_machine(),
                   faults=ft_faults())
    assert list(res.returns) == ["guarded", "guarded"]


def test_ftconfig_validation():
    with pytest.raises(ValueError, match="interval"):
        FTConfig(enabled=True, interval=0)
    with pytest.raises(ValueError, match="mode"):
        FTConfig(enabled=True, mode="migrate")
    with pytest.raises(ValueError, match="policy"):
        FTConfig(enabled=True, policy="undo")
    with pytest.raises(ValueError, match="replicas"):
        FTConfig(enabled=True, replicas=0)


def test_workload_rejects_colliding_layout():
    with pytest.raises(ValueError, match="collision-free"):
        run_spmd(ft_hashtable, 4, 8, 4, machine=ft_machine())
