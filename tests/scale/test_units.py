"""Rank-count unit parsing/formatting."""

import pytest

from repro.scale.units import format_ranks, parse_ranks, parse_ranks_list


def test_parse_plain_and_binary():
    assert parse_ranks("4096") == 4096
    assert parse_ranks("4Ki") == 4096
    assert parse_ranks("512Ki") == 524288
    assert parse_ranks("1Mi") == 1 << 20
    assert parse_ranks("1mi") == 1 << 20
    assert parse_ranks("2K") == 2000
    assert parse_ranks("1M") == 1_000_000
    assert parse_ranks(64) == 64


def test_parse_rejects_garbage():
    for bad in ("", "Ki", "x4", "4.5Ki", "0", "-8"):
        with pytest.raises(ValueError):
            parse_ranks(bad)


def test_parse_list():
    assert parse_ranks_list("256,1Ki,4Ki") == [256, 1024, 4096]
    with pytest.raises(ValueError):
        parse_ranks_list(" , ")


def test_format_roundtrip():
    assert format_ranks(1 << 20) == "1Mi"
    assert format_ranks(524288) == "512Ki"
    assert format_ranks(4096) == "4Ki"
    assert format_ranks(192) == "192"
    for n in (2, 512, 4096, 524288, 1 << 20):
        assert parse_ranks(format_ranks(n)) == n
