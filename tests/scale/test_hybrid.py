"""Hybrid engine behaviour: determinism, sampling invariance, memory.

* same seed -> bit-identical results (stats, sample, clock, events);
* the reported stats are *independent of the sampling fraction* --
  counts come from the vectorized model for all p ranks, the sample
  only chooses which ranks additionally validate on the DES;
* 1Mi-rank runs stay memory-bounded: aggregate state is numpy arrays,
  not per-rank Python objects, and the full-fidelity world's lazy rank
  tables only materialize what is touched.
"""

import numpy as np
import pytest

from repro.config import MachineConfig, ScaleConfig, SimConfig
from repro.scale import WORKLOADS, run_hybrid
from repro.scale.hybrid import HybridParityError, sample_ranks
from repro.scale.protocols import WorkloadSpec
from repro.scale.soa import AggregateSoA, ScaleTopology


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_same_seed_bit_identical(workload):
    a = run_hybrid(workload, 8192, ranks_per_node=32)
    b = run_hybrid(workload, 8192, ranks_per_node=32)
    assert a.stats == b.stats
    assert a.sample == b.sample
    assert a.sim_time_ns == b.sim_time_ns
    assert a.events_processed == b.events_processed


def test_different_seed_different_sample():
    a = run_hybrid("fence", 8192, sim=SimConfig(seed=1))
    b = run_hybrid("fence", 8192, sim=SimConfig(seed=2))
    assert a.sample != b.sample
    # ... but the counts are sample-independent by construction.
    assert a.stats == b.stats


@pytest.mark.parametrize("fraction", [1 / 512, 1 / 64, 1 / 8, 1.0])
def test_sampling_fraction_sweep(fraction):
    # Stats must be identical across sampling fractions; only the
    # amount of DES-side validation changes.
    ref = run_hybrid("lock", 4096, ranks_per_node=32)
    cfg = ScaleConfig(enabled=True, sample_fraction=fraction,
                      sample_min=2, sample_max=4096)
    res = run_hybrid("lock", 4096, ranks_per_node=32, scale=cfg)
    assert res.stats == ref.stats
    assert res.sim_time_ns == ref.sim_time_ns
    expect = max(2, min(4096, round(4096 * fraction)))
    assert len(res.sample) == expect


def test_sample_always_contains_master():
    cfg = ScaleConfig(enabled=True)
    for nranks in (64, 4096, 1 << 17):
        sample = sample_ranks(nranks, cfg, seed=7)
        assert sample[0] == 0
        assert len(np.unique(sample)) == len(sample)
        assert sample[-1] < nranks


def test_million_rank_memory_bounded():
    # 1Mi ranks: aggregate state must be flat arrays (tens of MB), not
    # per-rank objects; sample stays clamped at sample_max.
    res = run_hybrid("fence", 1 << 20, ranks_per_node=32)
    assert res.nranks == 1 << 20
    assert len(res.sample) <= ScaleConfig().sample_max
    # 7 int64/int32 arrays over 1Mi ranks: well under 100 MB.
    assert res.soa_nbytes < 100 * 1024 * 1024
    assert res.stats["messages"] > 50_000_000
    assert res.bounds["max_remote_ops_ok"]
    # Per-rank message count is O(log p): about 23 rounds' worth, far
    # below any O(p) pattern.
    assert res.bounds["max_remote_ops"] < 200


def test_world_rank_tables_are_lazy():
    # The in-scope world refactor backing the scale mode: building a
    # world must not materialize per-rank spaces/registration tables.
    from repro.runtime.world import World

    world = World(4096, MachineConfig(ranks_per_node=32))
    assert world.spaces.materialized == 0
    assert world.reg_tables.materialized == 0
    world.spaces[7].alloc(64, label="t")
    assert world.spaces.materialized == 1
    assert 4095 in world.spaces
    assert len(world.reg_tables) == 4096
    with pytest.raises(KeyError):
        world.spaces[4096]


def test_tier_divergence_is_refused():
    # A sampled rank whose DES program issues counts diverging from the
    # vectorized model must fail loudly, not return numbers.
    from repro.scale import protocols

    original = protocols.SampledRank.put_right
    try:
        def doubled(self):
            original(self)
            original(self)
        protocols.SampledRank.put_right = doubled
        with pytest.raises(HybridParityError):
            run_hybrid("fence", 256, ranks_per_node=32)
    finally:
        protocols.SampledRank.put_right = original


def test_contention_refused_by_soa():
    topo = ScaleTopology(8, 1)
    soa = AggregateSoA(topo)
    from repro.rma.locks import WRITER_BIT
    soa.lock_word[3] = WRITER_BIT
    with pytest.raises(RuntimeError):
        soa.lock_acquire_shared(3)
    with pytest.raises(RuntimeError):
        soa.pscw_start_consume(5)


def test_bad_workload_and_sizes():
    with pytest.raises(KeyError):
        run_hybrid("nope", 64)
    with pytest.raises(ValueError):
        run_hybrid("fence", 1)
    with pytest.raises(ValueError):
        WorkloadSpec("fence", epochs=0)
    with pytest.raises(ValueError):
        ScaleConfig(sample_fraction=0.0)
    with pytest.raises(ValueError):
        ScaleConfig(sample_min=1)
