"""Hybrid-vs-full exact message-count parity at overlapping sizes.

The load-bearing claim of the scale mode: at sizes the full DES can
execute, a hybrid run's ``stats`` dict equals the full-fidelity run's
``OpCounters.snapshot()`` **exactly** -- total messages, bytes moved,
per-kind counts, per-rank maxima -- across workloads, rank counts
(powers of two and not), and placements (1 and 32 ranks/node).
"""

import pytest

from repro.scale.parity import parity_case, parity_table

WORKLOADS = ["fence", "pscw", "lock", "flush"]


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("nranks", [2, 3, 16, 63])
def test_exact_parity_rpn1(workload, nranks):
    case = parity_case(workload, nranks, ranks_per_node=1)
    assert case["exact"], case["diff"]


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("nranks", [16, 63, 96])
def test_exact_parity_rpn32(workload, nranks):
    # 32 ranks/node: intra-node puts become XPMEM stores, PSCW posts
    # become message-free CPU atomics -- the kind split must match too.
    case = parity_case(workload, nranks, ranks_per_node=32)
    assert case["exact"], case["diff"]


def test_parity_table_verdict():
    table = parity_table([16, 32], ranks_per_node=32,
                         workloads=["fence", "lock"])
    assert table["ok"]
    assert len(table["cases"]) == 4
    for case in table["cases"]:
        assert case["exact"]
        assert case["bounds"]["max_remote_ops_ok"]


def test_olog_bounds_present():
    case = parity_case("fence", 64, ranks_per_node=32)
    bounds = case["bounds"]
    assert bounds["log2p"] == 6
    assert bounds["fence_rounds"] == 6
    assert bounds["max_remote_ops"] <= bounds["max_remote_ops_budget"]
    assert bounds["control_words_per_rank"] == 78
