"""DSDE: all five protocols must deliver identical multisets."""

import pytest

from repro import run_spmd
from repro.apps.dsde import dsde_program, expected_incoming
from repro.apps.dsde.common import make_targets
from repro.config import MachineConfig, SimConfig

INTER = MachineConfig(ranks_per_node=1)
PROTOS = ["alltoall", "reduce_scatter", "nbx", "rma", "rma_cray22"]


def _run(protocol, p, k=3):
    sim = SimConfig()
    res = run_spmd(dsde_program, p, protocol, k, machine=INTER, sim=sim)
    want = expected_incoming(sim.seed, p, k)
    for r, (elapsed, received) in enumerate(res.returns):
        assert received == want[r], (protocol, r)
        assert elapsed > 0
    return res


@pytest.mark.parametrize("protocol", PROTOS)
@pytest.mark.parametrize("p", [2, 4, 8])
def test_delivery_correct(protocol, p):
    _run(protocol, p)


@pytest.mark.parametrize("protocol", PROTOS)
def test_nonpow2(protocol):
    _run(protocol, 5, k=2)


def test_targets_are_distinct_and_not_self():
    for rank in range(10):
        t = make_targets(42, rank, 10, 6)
        assert len(t) == len(set(t)) == 6
        assert rank not in t


def test_targets_capped_for_small_worlds():
    assert make_targets(1, 0, 1, 6) == []
    assert len(make_targets(1, 0, 3, 6)) == 2


def test_alltoall_grows_faster_than_rma():
    """Figure 7b's shape: the dense alltoall grows ~linearly with p while
    the RMA protocol grows only with the fence's log p."""
    k = 3

    def t(proto, p):
        return max(t for t, _ in _run(proto, p, k).returns)

    a2a_growth = t("alltoall", 32) / t("alltoall", 4)
    rma_growth = t("rma", 32) / t("rma", 4)
    assert a2a_growth > 2 * rma_growth


def test_rma_competitive_with_nbx():
    """The paper: 'The RMA-based implementation is competitive with the
    nonblocking barrier, which was proved optimal'."""
    p, k = 16, 3
    t_nbx = max(t for t, _ in _run("nbx", p, k).returns)
    t_rma = max(t for t, _ in _run("rma", p, k).returns)
    assert t_rma < 3 * t_nbx


def test_cray22_rma_much_slower_than_fompi():
    """Figure 7b: the foMPI accumulates beat Cray MPI-2.2's by a wide
    margin (paper: 'a factor of two and nearly two orders of magnitude')."""
    p, k = 8, 3
    t_c22 = max(t for t, _ in _run("rma_cray22", p, k).returns)
    t_rma = max(t for t, _ in _run("rma", p, k).returns)
    assert t_c22 > 1.5 * t_rma
