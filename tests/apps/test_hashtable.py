"""Distributed hashtable: correctness of all three transports."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import run_spmd
from repro.apps.hashtable import (
    HashTableLayout,
    hash_key,
    mpi1_insert_program,
    rma_insert_program,
    upc_insert_program,
    verify_contents,
)
from repro.config import MachineConfig

INTER = MachineConfig(ranks_per_node=1)
INTRA = MachineConfig(ranks_per_node=64)

LAYOUT = HashTableLayout(table_slots=16, heap_cells=256)
PROGRAMS = {
    "rma": rma_insert_program,
    "upc": upc_insert_program,
    "mpi1": mpi1_insert_program,
}


def _run(variant, p, inserts, cfg):
    box = {}
    res = run_spmd(PROGRAMS[variant], p, LAYOUT, inserts, box, machine=cfg)
    volumes = [box["volumes"][r] for r in range(p)]
    all_keys = [box["keys"][r] for r in range(p)]
    verify_contents(LAYOUT, volumes, all_keys)
    return res


@pytest.mark.parametrize("variant", ["rma", "upc", "mpi1"])
@pytest.mark.parametrize("cfg", [INTER, INTRA], ids=["inter", "intra"])
def test_inserts_all_stored(variant, cfg):
    _run(variant, 4, 24, cfg)


@pytest.mark.parametrize("variant", ["rma", "upc", "mpi1"])
def test_single_rank(variant):
    _run(variant, 1, 16, INTRA)


def test_collisions_chain_correctly():
    """Tiny table forces many collisions; chains must hold every key."""
    layout = HashTableLayout(table_slots=2, heap_cells=128)
    box = {}
    run_spmd(rma_insert_program, 3, layout, 20, box, machine=INTER)
    volumes = [box["volumes"][r] for r in range(3)]
    keys = [box["keys"][r] for r in range(3)]
    verify_contents(layout, volumes, keys)
    total = sum(len(layout.all_contents(v)) for v in volumes)
    assert total == 60


def test_hash_is_deterministic_and_spread():
    hs = {hash_key(k) for k in range(1, 2000)}
    assert len(hs) == 1999  # no collisions in a small range
    owners = [hash_key(k) % 8 for k in range(1, 2000)]
    for o in range(8):
        assert owners.count(o) > 150  # roughly uniform


def test_insert_local_overflow_raises():
    layout = HashTableLayout(table_slots=1, heap_cells=1)
    vol = np.zeros(layout.words, np.int64)
    layout.insert_local(vol, 0, 10)
    layout.insert_local(vol, 0, 11)
    with pytest.raises(OverflowError):
        layout.insert_local(vol, 0, 12)


def test_slot_contents_walks_chain():
    layout = HashTableLayout(table_slots=2, heap_cells=8)
    vol = np.zeros(layout.words, np.int64)
    for v in (5, 6, 7):
        layout.insert_local(vol, 1, v)
    assert sorted(layout.slot_contents(vol, 1)) == [5, 6, 7]
    assert layout.slot_contents(vol, 0) == []


@settings(max_examples=10, deadline=None)
@given(st.lists(st.integers(1, 1 << 40), min_size=1, max_size=30,
                unique=True))
def test_local_volume_property(keys):
    """Property: any insert sequence is fully recoverable."""
    layout = HashTableLayout(table_slots=4, heap_cells=64)
    vol = np.zeros(layout.words, np.int64)
    for k in keys:
        _owner, slot = layout.place(k, 1)
        layout.insert_local(vol, slot, k)
    assert sorted(layout.all_contents(vol)) == sorted(keys)


def test_mpi1_rate_plateaus_rma_scales():
    """Figure 7a's shape: MPI-1's per-rank cost grows with p (its O(p)
    termination notification), so its aggregate insert rate plateaus,
    while the one-sided version's per-rank cost stays constant."""
    inserts = 12

    def rate(variant, p):
        t = max(_run(variant, p, inserts, INTER).returns)
        return p * inserts / (t / 1e9)

    mpi_growth = rate("mpi1", 16) / rate("mpi1", 4)
    rma_growth = rate("rma", 16) / rate("rma", 4)
    assert rma_growth > mpi_growth
    assert rma_growth > 3.0          # near-linear (4x ranks)
    assert mpi_growth < 3.0          # termination cost eats the gain


def test_rma_and_upc_comparable():
    p, inserts = 4, 12
    t_rma = max(_run("rma", p, inserts, INTER).returns)
    t_upc = max(_run("upc", p, inserts, INTER).returns)
    assert 0.5 < t_rma / t_upc < 1.1  # foMPI slightly faster
