"""Distributed 3-D FFT: numerical correctness + overlap benefit."""

import numpy as np
import pytest

from repro import run_spmd
from repro.apps.fft import FftSpec, ProcessGrid, fft_program, gather_result
from repro.apps.fft.parallel import _initial_block
from repro.config import MachineConfig

INTER = MachineConfig(ranks_per_node=1)
VARIANTS = ["mpi1", "rma_overlap", "upc_overlap"]


def _reference(spec: FftSpec) -> np.ndarray:
    full = _initial_block(spec, 0, 0, spec.ny, spec.nz)
    return np.fft.fftn(full)


@pytest.mark.parametrize("variant", VARIANTS)
@pytest.mark.parametrize("p", [1, 2, 4])
def test_fft_matches_numpy(variant, p):
    spec = FftSpec(nx=8, ny=8, nz=8, chunks=2)
    box = {}
    res = run_spmd(fft_program, p, spec, variant, box, machine=INTER)
    got = gather_result(spec, p, box)
    ref = _reference(spec)
    np.testing.assert_allclose(got, ref, rtol=1e-9, atol=1e-9)
    for elapsed, gflops in res.returns:
        assert elapsed > 0 and gflops > 0


@pytest.mark.parametrize("variant", VARIANTS)
def test_fft_nonsquare_grid(variant):
    spec = FftSpec(nx=8, ny=16, nz=4, chunks=3)
    p = 8  # grid 4x2: Py=4 divides 8 and 16; Pz=2 divides 4 and 16
    box = {}
    run_spmd(fft_program, p, spec, variant, box, machine=INTER)
    got = gather_result(spec, p, box)
    np.testing.assert_allclose(got, _reference(spec), rtol=1e-9, atol=1e-9)


def test_process_grid_factorization():
    assert ProcessGrid.for_ranks(16) == ProcessGrid(4, 4)
    assert ProcessGrid.for_ranks(8) == ProcessGrid(4, 2)
    assert ProcessGrid.for_ranks(7) == ProcessGrid(7, 1)
    assert ProcessGrid.for_ranks(1) == ProcessGrid(1, 1)


def test_process_grid_groups():
    g = ProcessGrid(2, 2)
    assert g.row_group(0) == [0, 2]
    assert g.col_group(0) == [0, 1]
    assert g.row_group(3) == [1, 3]


def test_grid_divisibility_check():
    with pytest.raises(ValueError):
        ProcessGrid(3, 1).check_divides(8, 8, 8)


def test_overlap_variant_faster_when_comm_bound():
    """Figure 7c: the slab-overlap schedule beats nonblocking MPI once
    communication is a significant fraction of the runtime."""
    # Balanced compute/comm (both ~20 us per phase) is where overlap pays.
    spec = FftSpec(nx=32, ny=32, nz=32, flop_rate=1.2e10, chunks=4)
    p = 4
    t_mpi = max(e for e, _ in
                run_spmd(fft_program, p, spec, "mpi1", machine=INTER).returns)
    t_rma = max(e for e, _ in
                run_spmd(fft_program, p, spec, "rma_overlap",
                         machine=INTER).returns)
    assert t_rma < 0.9 * t_mpi, (t_rma, t_mpi)


def test_rma_and_upc_overlap_comparable():
    spec = FftSpec(nx=32, ny=32, nz=32, flop_rate=1.2e10, chunks=4)
    p = 4
    t_upc = max(e for e, _ in
                run_spmd(fft_program, p, spec, "upc_overlap",
                         machine=INTER).returns)
    t_rma = max(e for e, _ in
                run_spmd(fft_program, p, spec, "rma_overlap",
                         machine=INTER).returns)
    # foMPI has slightly lower static overhead than UPC (paper 4.3)
    assert t_rma <= t_upc * 1.05


def test_flop_model():
    spec = FftSpec(nx=8, ny=8, nz=8)
    assert spec.total_flops() == pytest.approx(5 * 512 * 9)
    assert spec.fft_ns(4, 8) == pytest.approx(5 * 4 * 8 * 3 / 2.0e9 * 1e9)
