"""MILC proxy: operator properties, CG convergence, transport agreement."""

import numpy as np
import pytest

from repro import run_spmd
from repro.apps.milc import LatticeDecomp, MilcSpec, milc_program
from repro.apps.milc.lattice import factorize4, link_phases
from repro.apps.milc.su3 import (
    StencilOperator,
    direction_matrices,
    local_dot,
    make_source,
)
from repro.config import MachineConfig

INTER = MachineConfig(ranks_per_node=1)
SMALL = MilcSpec(local=(4, 4, 4, 4), maxiter=80)


# ---------------------------------------------------------------------------
# geometry
# ---------------------------------------------------------------------------
def test_factorize4():
    assert sorted(factorize4(8)) == [1, 1, 2, 4] or factorize4(8) == (2, 2, 2, 1)
    a = factorize4(16)
    assert np.prod(a) == 16
    assert np.prod(factorize4(7)) == 7
    assert factorize4(1) == (1, 1, 1, 1)


def test_neighbors_wrap():
    d = LatticeDecomp.weak((4, 4, 4, 4), 4)
    for r in range(4):
        for dim in range(4):
            up = d.neighbor(r, dim, +1)
            assert d.neighbor(up, dim, -1) == r


def test_link_phases_consistent_across_decomp():
    """theta is a function of global coords: a rank's interior phases must
    equal the corresponding region of the single-rank lattice."""
    d1 = LatticeDecomp(local=(4, 4, 4, 4), pgrid=(1, 1, 1, 1))
    d2 = LatticeDecomp(local=(2, 4, 4, 4), pgrid=(2, 1, 1, 1))
    full = link_phases(d1, 0)
    part = link_phases(d2, 1)  # second half along dim 0
    np.testing.assert_allclose(part[:, 1:-1, 1:-1, 1:-1, 1:-1][:, :, :, :],
                               full[:, 3:5, 1:-1, 1:-1, 1:-1])


# ---------------------------------------------------------------------------
# operator math
# ---------------------------------------------------------------------------
def _single_rank_op(l=(4, 4, 4, 4), mass=0.5, seed=7):
    d = LatticeDecomp(local=l, pgrid=(1, 1, 1, 1))
    return d, StencilOperator(d, 0, mass, seed)


def _wrap_halos(op, padded):
    for dim in range(4):
        op.set_halo(padded, dim, +1, op.face(padded, dim, -1))
        op.set_halo(padded, dim, -1, op.face(padded, dim, +1))


def test_direction_matrices_unitary():
    U = direction_matrices(7)
    for mu in range(4):
        np.testing.assert_allclose(U[mu] @ U[mu].conj().T, np.eye(3),
                                   atol=1e-12)


def test_operator_hermitian():
    d, op = _single_rank_op()
    rng = np.random.default_rng(1)
    shape = d.local + (3,)
    u = rng.normal(size=shape) + 1j * rng.normal(size=shape)
    v = rng.normal(size=shape) + 1j * rng.normal(size=shape)
    pu, pv = op.padded(u), op.padded(v)
    _wrap_halos(op, pu)
    _wrap_halos(op, pv)
    au, av = op.apply(pu), op.apply(pv)
    lhs = local_dot(u, av)
    rhs = np.conj(local_dot(v, au))
    assert abs(lhs - rhs) < 1e-9 * abs(lhs)


def test_operator_positive_definite():
    d, op = _single_rank_op()
    rng = np.random.default_rng(2)
    for _ in range(5):
        u = rng.normal(size=d.local + (3,)) + 1j * rng.normal(size=d.local + (3,))
        pu = op.padded(u)
        _wrap_halos(op, pu)
        quad = local_dot(u, op.apply(pu))
        assert quad.real > 0
        assert abs(quad.imag) < 1e-9 * quad.real


# ---------------------------------------------------------------------------
# distributed CG
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("variant", ["mpi1", "rma", "upc"])
@pytest.mark.parametrize("p", [1, 2, 4])
def test_cg_converges(variant, p):
    res = run_spmd(milc_program, p, SMALL, variant, machine=INTER)
    for elapsed, iters, residual, _chk in res.returns:
        assert residual < SMALL.tol
        assert 0 < iters < SMALL.maxiter
        assert elapsed > 0


def test_transports_agree_numerically():
    """Same p => same global problem => identical solutions."""
    p = 4
    sums = {}
    for variant in ("mpi1", "rma", "upc"):
        res = run_spmd(milc_program, p, SMALL, variant, machine=INTER)
        sums[variant] = sum(chk for _e, _i, _r, chk in res.returns)
    a, b, c = sums["mpi1"], sums["rma"], sums["upc"]
    assert abs(a - b) < 1e-8 * abs(a)
    assert abs(a - c) < 1e-8 * abs(a)


def test_solution_matches_single_rank():
    """Decomposition independence: p=4 solution equals p=1 solution."""
    spec = SMALL
    box1, box4 = {}, {}
    run_spmd(milc_program, 1, spec, "mpi1", box1, machine=INTER)
    run_spmd(milc_program, 4, spec, "rma", box4, machine=INTER)
    d4 = LatticeDecomp.weak(spec.local, 4)
    # weak scaling: p=4 is a *different* (larger) lattice, so compare
    # instead the p=1 problem against a strong-style rerun: p=1 via rma.
    box1b = {}
    run_spmd(milc_program, 1, spec, "rma", box1b, machine=INTER)
    np.testing.assert_allclose(box1[0], box1b[0], rtol=1e-9)
    assert d4.global_dims != spec.local  # documents the weak-scaling setup


def test_rma_not_slower_than_mpi1():
    """Figure 8: foMPI (and UPC) beat MPI-1 on the full solve."""
    p = 8
    spec = MilcSpec(local=(4, 4, 4, 8), maxiter=25, tol=0.0)  # fixed iters
    t_mpi = max(e for e, *_ in
                run_spmd(milc_program, p, spec, "mpi1", machine=INTER).returns)
    t_rma = max(e for e, *_ in
                run_spmd(milc_program, p, spec, "rma", machine=INTER).returns)
    assert t_rma < t_mpi, (t_rma, t_mpi)


def test_rma_and_upc_close():
    p = 4
    spec = MilcSpec(local=(4, 4, 4, 8), maxiter=15, tol=0.0)
    t_upc = max(e for e, *_ in
                run_spmd(milc_program, p, spec, "upc", machine=INTER).returns)
    t_rma = max(e for e, *_ in
                run_spmd(milc_program, p, spec, "rma", machine=INTER).returns)
    assert abs(t_rma - t_upc) < 0.15 * t_upc
