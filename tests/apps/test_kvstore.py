"""KvStore operation semantics: layout, paths (table/heap/update),
chain walks, misses, and cross-rank correctness."""

import numpy as np
import pytest

from repro.apps.hashtable.common import claim_overflow_cell
from repro.apps.kvstore.layout import KvLayout
from repro.apps.kvstore.rma_kv import KvStore
from repro.config import MachineConfig
from repro.runtime.job import run_spmd

MACHINE = MachineConfig(ranks_per_node=1)


def _run(program, nranks=1, *args, **kwargs):
    res = run_spmd(program, nranks, *args, machine=MACHINE, **kwargs)
    for r in res.returns:
        if isinstance(r, BaseException):
            raise r
    return res


# ----------------------------------------------------------------------
# layout
# ----------------------------------------------------------------------
def test_layout_word_geometry():
    lay = KvLayout(table_slots=4, heap_cells=8)
    assert lay.words == 1 + 12 + 24
    assert lay.slot_key(0) == 1
    assert lay.slot_head(3) == 3 + 9
    assert lay.heap_key(1) == 1 + 12            # first cell is 1-based
    assert lay.heap_next(8) == lay.words - 1


def test_layout_scan_reads_slots_and_chains():
    lay = KvLayout(table_slots=1, heap_cells=4)
    vol = np.zeros(lay.words, dtype=np.int64)
    vol[lay.slot_key(0)], vol[lay.slot_value(0)] = 10, 100
    vol[lay.slot_head(0)] = 2
    vol[lay.heap_key(2)], vol[lay.heap_value(2)] = 11, 110
    vol[lay.heap_next(2)] = 1
    vol[lay.heap_key(1)], vol[lay.heap_value(1)] = 12, 120
    assert lay.scan(vol) == {10: 100, 11: 110, 12: 120}


def test_claim_overflow_cell_exhaustion():
    assert claim_overflow_cell(0, 2) == 1
    assert claim_overflow_cell(1, 2) == 2
    with pytest.raises(OverflowError):
        claim_overflow_cell(2, 2)


# ----------------------------------------------------------------------
# single-rank op semantics (table_slots=1 forces chains)
# ----------------------------------------------------------------------
def test_ops_single_rank_forced_chains():
    lay = KvLayout(table_slots=1, heap_cells=16)

    def program(ctx):
        store = KvStore(ctx, lay, n_stripes=1)
        yield from store.setup()
        log = {}
        # every key maps to slot 0: first insert takes the table slot,
        # the rest go to the overflow heap
        log["paths"] = []
        for key in (3, 5, 9, 17):
            path = yield from store.put(key, key * 100)
            log["paths"].append(path)
        log["get_heap"] = yield from store.get(9)
        log["miss"] = yield from store.get(1234)
        # overwrite resolves in place for both table and heap residents
        log["over_table"] = yield from store.put(3, 42)
        log["over_heap"] = yield from store.put(17, 43)
        log["get_over"] = yield from store.get(17)
        # CAS-update on present key; update-on-missing inserts the delta
        log["upd"] = yield from store.update(5, 7)
        log["upd_missing"] = yield from store.update(77, 9)
        log["get_upd_missing"] = yield from store.get(77)
        yield from ctx.coll.barrier()
        log["scan"] = store.scan_local()
        yield from store.close()
        return log

    res = _run(program, 1)
    log = res.returns[0]
    assert log["paths"] == ["table", "heap", "heap", "heap"]
    assert log["get_heap"] == 900
    assert log["miss"] is None
    assert log["over_table"] == "update" and log["over_heap"] == "update"
    assert log["get_over"] == 43
    assert log["upd"] == 507
    assert log["upd_missing"] == 9
    assert log["get_upd_missing"] == 9
    assert log["scan"] == {3: 42, 5: 507, 9: 900, 17: 43, 77: 9}


def test_chain_hops_observed():
    from repro.config import ObsConfig

    lay = KvLayout(table_slots=1, heap_cells=16)

    def program(ctx):
        store = KvStore(ctx, lay, n_stripes=1)
        yield from store.setup()
        for key in (3, 5, 9):
            yield from store.put(key, key)
        yield from store.get(9)
        yield from ctx.coll.barrier()
        yield from store.close()

    res = run_spmd(program, 1, machine=MACHINE,
                   obs=ObsConfig(enabled=True))
    hist = res.obs.metrics.merged_histogram("kv.chain_hops")
    assert hist.snapshot()["count"] > 0


def test_key_validation():
    lay = KvLayout(table_slots=1, heap_cells=4)

    def program(ctx):
        store = KvStore(ctx, lay)
        yield from store.setup()
        caught = []
        for bad in (0, -3, 1 << 63):
            try:
                yield from store.get(bad)
            except ValueError:
                caught.append(bad)
        yield from ctx.coll.barrier()
        yield from store.close()
        return caught

    res = _run(program, 1)
    assert res.returns[0] == [0, -3, 1 << 63]


def test_bad_stripes_rejected():
    with pytest.raises(ValueError):
        KvStore(None, KvLayout(table_slots=1, heap_cells=4), n_stripes=0)


# ----------------------------------------------------------------------
# cross-rank
# ----------------------------------------------------------------------
def test_cross_rank_puts_and_gets():
    """Each rank writes its own key range, reads everyone else's; the
    union of the final partitions is exactly the written map."""
    lay = KvLayout.default(16)
    nranks, per_rank = 4, 8

    def program(ctx):
        store = KvStore(ctx, lay)
        yield from store.setup()
        for i in range(per_rank):
            key = 1 + ctx.rank * per_rank + i
            yield from store.put(key, key * 10)
        yield from store.win.flush_all()
        yield from ctx.coll.barrier()
        got = {}
        for key in range(1, nranks * per_rank + 1):
            got[key] = yield from store.get(key)
        yield from store.win.flush_all()
        yield from ctx.coll.barrier()
        part = store.scan_local()
        yield from store.close()
        return got, part

    res = _run(program, nranks)
    expect = {k: k * 10 for k in range(1, nranks * per_rank + 1)}
    merged = {}
    for got, part in res.returns:
        assert got == expect
        merged.update(part)
    assert merged == expect
