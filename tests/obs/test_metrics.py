"""Metrics registry: counters, gauges, histograms, link accounting."""

from repro.obs.metrics import Histogram, MetricsRegistry


def test_histogram_buckets_and_stats():
    h = Histogram()
    for v in (0, 1, 2, 3, 4, 1000):
        h.observe(v)
    assert h.count == 6
    assert h.total == 1010
    assert h.min == 0
    assert h.max == 1000
    assert abs(h.mean - 1010 / 6) < 1e-9
    snap = h.snapshot()
    # 0 and 1 land in the first bucket; 2 in <=2^1; 3 and 4 in <=2^2.
    assert snap["buckets"]["<=2^0"] == 2
    assert snap["buckets"]["<=2^1"] == 1
    assert snap["buckets"]["<=2^2"] == 2
    assert snap["buckets"]["<=2^10"] == 1


def test_histogram_empty():
    h = Histogram()
    assert h.count == 0
    assert h.mean == 0.0
    assert h.snapshot()["count"] == 0


def test_registry_counters_and_gauges():
    m = MetricsRegistry()
    m.count("ops", 0)
    m.count("ops", 0, inc=4)
    m.count("ops", 2)
    m.gauge("depth", 1, 7)
    snap = m.snapshot()
    # Snapshots stringify rank keys so they round-trip through JSON.
    assert snap["counters"]["ops"] == {"0": 5, "2": 1}
    assert snap["gauges"]["depth"] == {"1": 7}
    assert m.counter_total("ops") == 6
    assert m.counter_total("missing") == 0


def test_registry_histograms_merge_across_ranks():
    m = MetricsRegistry()
    m.observe("lat", 0, 10)
    m.observe("lat", 1, 30)
    merged = m.merged_histogram("lat")
    assert merged.count == 2
    assert merged.total == 40
    assert merged.min == 10 and merged.max == 30


def test_registry_link_bytes():
    m = MetricsRegistry()
    m.link_bytes(0, 1, 64)
    m.link_bytes(0, 1, 8)
    m.link_bytes(1, 0, 4)
    snap = m.snapshot()
    assert snap["link_bytes"] == {"0->1": 72, "1->0": 4}
