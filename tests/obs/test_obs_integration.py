"""End-to-end observability: golden determinism, zero perturbation,
exporters, and the capture hook."""

import json

from repro.config import (
    FaultConfig,
    FaultPlan,
    MachineConfig,
    ObsConfig,
    SimConfig,
)
from repro.obs import capture, chrome_trace_json, render_report, run_workload
from repro.obs.chrome import PID_NICS, PID_RANKS
from repro.obs.workloads import wl_putget
from repro.runtime.job import run_spmd


def test_chrome_trace_byte_identical_across_runs():
    """Same seed, same workload -> byte-identical Chrome trace JSON."""
    _, obs1 = run_workload("putget", nranks=4, seed=11)
    _, obs2 = run_workload("putget", nranks=4, seed=11)
    t1 = chrome_trace_json(obs1, label="putget")
    t2 = chrome_trace_json(obs2, label="putget")
    assert t1 == t2


def test_chrome_trace_schema():
    _, obs = run_workload("putget", nranks=4, seed=11)
    doc = json.loads(chrome_trace_json(obs, label="putget"))
    assert doc["displayTimeUnit"] == "ns"
    assert doc["otherData"]["label"] == "putget"
    events = doc["traceEvents"]
    assert events
    for ev in events:
        assert ev["ph"] in {"X", "i", "M"}
        assert ev["pid"] in {PID_RANKS, PID_NICS}
        assert isinstance(ev["tid"], int)
    # Complete events carry durations; instants are thread-scoped.
    assert all("dur" in ev for ev in events if ev["ph"] == "X")
    assert all(ev["s"] == "t" for ev in events if ev["ph"] == "i")
    # One named thread track per rank.
    thread_names = {ev["args"]["name"] for ev in events
                    if ev["ph"] == "M" and ev["name"] == "thread_name"}
    assert {"rank 0", "rank 1", "rank 2", "rank 3"} <= thread_names


def test_workload_span_coverage():
    """Each demo workload records the spans of its protocol family."""
    expect = {
        "putget": {"dmapp.put", "dmapp.get", "flush", "lock.lock_all",
                   "coll.barrier"},
        "locks": {"lock.exclusive", "lock.shared", "lock.hold",
                  "dmapp.amo"},
        "fence": {"epoch.fence", "dmapp.put"},
        "pscw": {"pscw.post", "pscw.start", "pscw.complete", "pscw.wait"},
    }
    for name, wanted in expect.items():
        _, obs = run_workload(name, nranks=4, seed=3)
        names = {s.name for s in obs.spans.spans}
        assert wanted <= names, f"{name}: missing {wanted - names}"


def test_obs_disabled_schedule_bit_identical():
    """Enabling observability must not move a single event."""
    sim = SimConfig(seed=7)
    off = run_spmd(wl_putget, 4, sim=sim)
    on = run_spmd(wl_putget, 4, sim=sim, obs=ObsConfig(enabled=True))
    assert off.obs is None
    assert on.obs is not None and len(on.obs.spans) > 0
    assert off.sim_time_ns == on.sim_time_ns
    assert off.events_processed == on.events_processed
    assert off.returns == on.returns


def test_check_disabled_schedule_bit_identical():
    """Enabling the memory-model checker must not move a single event."""
    from repro.config import CheckConfig

    sim = SimConfig(seed=7)
    off = run_spmd(wl_putget, 4, sim=sim)
    on = run_spmd(wl_putget, 4, sim=sim, check=CheckConfig(enabled=True))
    assert off.check is None
    assert on.check is not None and on.check.accesses_seen > 0
    assert off.sim_time_ns == on.sim_time_ns
    assert off.events_processed == on.events_processed
    assert off.returns == on.returns


def test_checker_off_golden_schedules():
    """Checker-disabled runs are bit-identical to pre-checker schedules:
    the golden numbers below were captured at seed 11 before the check
    subsystem existed."""
    golden = {
        "putget": (11835, 502),
        "locks": (22876, 566),
        "fence": (33492, 490),
        "pscw": (16611, 302),
    }
    for name, (t_ns, events) in golden.items():
        res, _ = run_workload(name, nranks=4, seed=11, ranks_per_node=4)
        assert (res.sim_time_ns, res.events_processed) == (t_ns, events), \
            f"{name}: schedule drifted from pre-checker golden trace"


def test_obs_faulty_schedule_bit_identical():
    """The retransmit hook must not consume extra RNG draws: a faulty
    run's schedule is identical with observability on and off."""
    plan = FaultPlan(drop_prob=0.25)
    kw = dict(machine=MachineConfig(ranks_per_node=1),
              sim=SimConfig(seed=13), faults=FaultConfig(plan=plan))
    off = run_spmd(wl_putget, 4, **kw)
    on = run_spmd(wl_putget, 4, obs=ObsConfig(enabled=True), **kw)
    assert off.sim_time_ns == on.sim_time_ns
    assert off.events_processed == on.events_processed
    assert off.returns == on.returns
    # The drops actually happened, and the obs counters account for every
    # retransmission the transport reported: DMAPP op-level retries plus
    # link-level retries of reliable MPI-1 packets.
    observed = (on.obs.metrics.counter_total("retransmits")
                + on.obs.metrics.counter_total("link_retransmits"))
    assert observed == on.stats["retransmits"] > 0
    assert on.obs.metrics.counter_total("retransmits") > 0


def test_capture_collects_instrumentation():
    with capture() as sink:
        res = run_spmd(wl_putget, 4, sim=SimConfig(seed=5))
    assert len(sink) == 1
    assert res.obs is sink[0]
    assert len(sink[0].spans) > 0


def test_capture_nesting_keeps_outer_sink():
    with capture() as outer:
        with capture() as inner:
            run_spmd(wl_putget, 4, sim=SimConfig(seed=5))
        assert inner is outer
    assert len(outer) == 1


def test_trace_spmd_writes_trace(tmp_path):
    from repro.obs import trace_spmd

    path = tmp_path / "t.json"
    res, text = trace_spmd(wl_putget, 4, path=str(path),
                           label="unit", sim=SimConfig(seed=9))
    assert res.obs is not None
    assert path.read_text() == text
    assert json.loads(text)["otherData"]["label"] == "unit"


def test_render_report_sections():
    res, obs = run_workload("locks", nranks=4, seed=2)
    text = render_report(obs, title="locks demo",
                         sim_time_ns=res.sim_time_ns,
                         events_processed=res.events_processed)
    assert "locks demo" in text
    assert "where simulated time goes (by span)" in text
    assert "counters" in text
    assert "simulated-time histograms" in text
    assert "busiest links" in text
    assert "lock_hold_ns" in text
