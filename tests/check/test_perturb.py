"""Schedule-perturbation mode: latent races stay hidden on the default
schedule, manifest under seeded jitter, and every finding carries a
reproducer seed that replays it."""

from repro.check.perturb import perturb_sweep, reproducer_command
from repro.check.runner import check_workload

ITERS = 4


def test_latent_race_clean_on_default_schedule():
    _, ck = check_workload("racy_latent", nranks=4, seed=11)
    assert ck.clean


def test_sweep_manifests_latent_race():
    sweep = perturb_sweep("racy_latent", ITERS, nranks=4, base_seed=11)
    assert not sweep.clean
    assert sweep.iterations == ITERS
    assert len(sweep.seeds) == len(sweep.checkers) == ITERS
    # Derived seeds are distinct, so the iterations explore distinct
    # schedules.
    assert len(set(sweep.seeds)) == ITERS
    kinds = {v.kind for v in sweep.findings}
    assert kinds <= {"put-put", "put-get"} and kinds


def test_findings_carry_replayable_seed():
    sweep = perturb_sweep("racy_latent", ITERS, nranks=4, base_seed=11)
    finding = sweep.findings[0]
    assert finding.seed is not None
    # Replaying the stamped seed with jitter reproduces the violation.
    _, ck = check_workload("racy_latent", nranks=4, seed=finding.seed,
                           jitter=True)
    assert any(v.kind == finding.kind for v in ck.violations)
    cmd = reproducer_command("racy_latent", 4, finding.seed)
    assert cmd == f"repro check racy_latent --ranks 4 " \
                  f"--seed {finding.seed} --jitter"
    assert f"--seed {finding.seed}" in finding.describe()


def test_sweep_deterministic_given_base_seed():
    a = perturb_sweep("racy_latent", ITERS, nranks=4, base_seed=11)
    b = perturb_sweep("racy_latent", ITERS, nranks=4, base_seed=11)
    assert a.seeds == b.seeds
    assert [len(c.violations) for c in a.checkers] == \
           [len(c.violations) for c in b.checkers]


def test_sweep_on_clean_workload_stays_clean():
    sweep = perturb_sweep("clean_put_put", 2, nranks=4, base_seed=11)
    assert sweep.clean and not sweep.findings
