"""End-to-end checker behaviour: every seeded racy demo is flagged with
the right violation class and conflicting-access pair; every clean demo
(and the four obs workloads) comes back spotless; results are
deterministic per seed."""

import numpy as np
import pytest

from repro.check.runner import check_workload, run_checked
from repro.check.workloads import CHECK_WORKLOADS, RACY_EXPECT
from repro.rma.datatypes import BYTE, Vector

CLEAN = [n for n in CHECK_WORKLOADS
         if not n.startswith("racy_")] + ["racy_latent"]


@pytest.mark.parametrize("name", sorted(RACY_EXPECT))
def test_racy_demo_flagged_with_expected_kind(name):
    _, ck = check_workload(name, nranks=4, seed=11)
    assert not ck.clean, f"{name}: checker missed the seeded race"
    kinds = {v.kind for v in ck.violations}
    assert kinds == {RACY_EXPECT[name]}, \
        f"{name}: got {kinds}, expected {{{RACY_EXPECT[name]!r}}}"


@pytest.mark.parametrize("name", sorted(CLEAN))
def test_clean_workload_has_zero_violations(name):
    _, ck = check_workload(name, nranks=4, seed=11)
    assert ck.clean, \
        f"{name}: false positives: {[v.describe() for v in ck.violations]}"
    assert ck.accesses_seen > 0 or name in ("fence", "pscw", "locks",
                                            "putget")


def test_put_put_pair_identifies_both_writers():
    """The report names the two conflicting accesses with rank, kind,
    epoch and timestamp -- the paper-mandated debugging payload."""
    _, ck = check_workload("racy_put_put", nranks=4, seed=11)
    for v in ck.violations:
        assert v.first.kind == "put" and v.second.kind == "put"
        assert v.first.rank != v.second.rank
        assert v.target == 0 and (v.lo, v.hi) == (0, 8)
        assert v.first.epoch == "lock_all"
        assert v.second.t_ns >= v.first.t_ns >= 0
        text = v.describe()
        assert f"rank {v.first.rank}" in text
        assert f"rank {v.second.rank}" in text


def test_acc_mix_pair_names_both_ops():
    _, ck = check_workload("racy_acc_mix", nranks=4, seed=11)
    for v in ck.violations:
        assert {v.first.op, v.second.op} == {"sum", "replace"}
        assert v.first.is_acc and v.second.is_acc


def test_atomic_nonatomic_pair():
    _, ck = check_workload("racy_atomic_nonatomic", nranks=4, seed=11)
    for v in ck.violations:
        kinds = {v.first.kind, v.second.kind}
        assert "put" in kinds and (kinds & {"fao"})


def test_local_remote_pair_attributes_target_side_access():
    _, ck = check_workload("racy_local", nranks=4, seed=11)
    assert any({v.first.kind, v.second.kind} == {"local_load", "put"}
               for v in ck.violations)
    for v in ck.violations:
        local = v.first if v.first.is_local else v.second
        assert local.rank == 0 == local.target


def test_msg_sync_orders_mixed_two_sided_one_sided():
    """Satellite: MPI-1 send/recv match points feed the vector-clock
    engine, so a put ordered by a message edge is not a race -- and the
    control twin (message sent before the put) still is."""
    _, ck = check_workload("clean_msg_sync", nranks=4, seed=11)
    assert ck.clean, [v.describe() for v in ck.violations]
    assert ck.msg_edges >= 1

    _, ck = check_workload("racy_msg_nosync", nranks=4, seed=11)
    assert {v.kind for v in ck.violations} == {"local-remote"}


def test_same_origin_pair_shares_oseq():
    """The two unflushed puts carry the same operation-sequence number;
    the clean twin's flush separates them."""
    _, ck = check_workload("racy_same_origin", nranks=4, seed=11)
    for v in ck.violations:
        assert v.first.rank == v.second.rank
        assert v.first.oseq == v.second.oseq
    _, ck = check_workload("clean_same_origin", nranks=4, seed=11)
    assert ck.clean


def test_strided_interleaved_disjoint_is_not_a_race():
    """Satellite: interleaving-but-non-overlapping vector datatypes from
    two origins never alias byte-wise -> zero violations."""
    _, ck = check_workload("clean_strided", nranks=4, seed=11)
    assert ck.clean
    assert ck.accesses_seen > 0


def test_interleaved_range_sets_do_not_overlap():
    """The range-set predicate underneath: even/odd 8-byte lanes of a
    stride-16 vector interleave without byte overlap."""
    from repro.check.core import _overlaps

    even = tuple((16 * i, 16 * i + 8) for i in range(4))
    odd = tuple((16 * i + 8, 16 * i + 16) for i in range(4))
    assert not _overlaps(even, odd)
    assert _overlaps(even, even)
    assert _overlaps(even, ((4, 12),))


def test_strided_overlapping_is_a_race():
    """Control for the test above: same vector type, same displacement
    -> every lane collides and the put-put race is reported."""

    def program(ctx):
        win = yield from ctx.rma.win_allocate(16 * 8)
        yield from win.lock_all()
        vec = Vector(8, 8, 16, BYTE)
        data = np.full(64, ctx.rank, np.uint8)
        if ctx.rank in (1, 2):
            yield from win.put(data, 0, 0, target_datatype=vec, count=1)
        yield from win.flush(0)
        yield from win.unlock_all()
        yield from ctx.coll.barrier()
        yield from win.free()

    _, ck = run_checked(program, nranks=4, seed=11)
    assert {v.kind for v in ck.violations} == {"put-put"}


def test_violations_deterministic_per_seed():
    def sig(ck):
        return [(v.kind, v.target, v.lo, v.hi, v.count,
                 v.first.rank, v.second.rank, v.first.t_ns, v.second.t_ns)
                for v in ck.violations]

    _, a = check_workload("racy_put_put", nranks=4, seed=23)
    _, b = check_workload("racy_put_put", nranks=4, seed=23)
    assert sig(a) == sig(b)


def test_duplicate_pairs_deduplicate_with_count():
    """The same (kinds, ranks, ops) signature repeats -> one Violation
    with count > 1, not a flood."""

    def program(ctx):
        win = yield from ctx.rma.win_allocate(8)
        yield from win.lock_all()
        if ctx.rank < 2:
            for _ in range(3):
                yield from win.put(np.full(8, ctx.rank, np.uint8), 0, 0)
                yield from win.flush(0)
        yield from win.unlock_all()
        yield from ctx.coll.barrier()
        yield from win.free()

    _, ck = run_checked(program, nranks=4, seed=11)
    assert len(ck.violations) == 1
    assert ck.violations[0].count > 1
    assert "(x" in ck.violations[0].describe()


def test_full_barrier_prunes_shadow_records():
    def program(ctx):
        win = yield from ctx.rma.win_allocate(8 * ctx.nranks)
        yield from win.lock_all()
        yield from win.put(np.full(8, 1, np.uint8), 0, 8 * ctx.rank)
        yield from win.flush(0)
        yield from win.unlock_all()
        yield from ctx.coll.barrier()   # global ordering point
        yield from ctx.coll.barrier()   # second one observes the prune
        yield from win.free()

    _, ck = run_checked(program, nranks=4, seed=11)
    assert ck.clean
    assert ck.pruned > 0


def test_record_cap_truncates_gracefully():
    from repro.config import CheckConfig
    from repro.runtime.job import run_spmd

    def program(ctx):
        win = yield from ctx.rma.win_allocate(8 * ctx.nranks)
        yield from win.lock_all()
        for _ in range(4):
            yield from win.put(np.full(8, 1, np.uint8), 0, 8 * ctx.rank)
            yield from win.flush(0)
        yield from win.unlock_all()
        yield from ctx.coll.barrier()
        yield from win.free()

    res = run_spmd(program, 4, check=CheckConfig(enabled=True,
                                                 max_records=2))
    ck = res.check
    assert ck.truncated
    assert ck.stats_snapshot()["truncated"]
    assert ck.nrecords <= 2


def test_stats_snapshot_shape():
    _, ck = check_workload("racy_put_put", nranks=4, seed=11)
    s = ck.stats_snapshot()
    assert s["violations"] >= s["unique"] >= 1
    assert s["by_kind"] == {"put-put": s["violations"]}
    assert s["accesses"] > 0 and not s["truncated"]


def test_run_result_carries_check_stats():
    res, ck = check_workload("clean_put_put", nranks=4, seed=11)
    assert res.check is ck
    assert res.stats["check"]["violations"] == 0


def test_unknown_workload_lists_choices():
    with pytest.raises(ValueError, match="racy_put_put"):
        check_workload("nope")
