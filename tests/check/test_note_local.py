"""The local_view annotation API and the MCS-locked CAS path, each with
its racy twin.

``Window.local_view`` hands out a zero-copy numpy array the checker
cannot see through -- the documented tracking gap.  ``note_local``
closes it by explicit declaration: an annotated unordered scan is
*flagged*, its unannotated twin silently passes (the gap, pinned as a
test so the docs stay honest), and the properly ordered scan is clean.

The kvstore's CAS-update mixes plain gets with CAS on the same words;
the striped MCS lock is exactly what makes that well-defined.  The twin
without the lock must be flagged as the atomic-vs-nonatomic race it is.
"""

import numpy as np
import pytest

from repro.check.runner import run_checked
from repro.rma.enums import Op
from repro.rma.mcs import McsLock
from repro.rma.window import CTRL_WORDS_BASE


def _scan_program(ctx, annotate: bool, ordered: bool):
    win = yield from ctx.rma.win_allocate(64, disp_unit=8)
    yield from win.lock_all()
    if ctx.rank == 1:
        yield from win.put(np.array([7], np.int64), 0, 0)
        yield from win.flush(0)
    if ordered:
        yield from ctx.coll.barrier()
    if ctx.rank == 0:
        if annotate:
            win.note_local("load", 8)
        _ = int(win.local_view(np.int64)[0])
    yield from win.unlock_all()
    yield from ctx.coll.barrier()


def test_annotated_unordered_scan_is_flagged():
    _, ck = run_checked(_scan_program, 2, seed=11, annotate=True,
                        ordered=False)
    assert not ck.clean
    assert any({v.first.kind, v.second.kind} == {"local_load", "put"}
               for v in ck.violations)


def test_unannotated_twin_passes_the_documented_gap():
    """Bit-for-bit the same racy access pattern, minus the annotation:
    the checker cannot see through the zero-copy view.  This test IS
    the documentation of the gap -- if segment watching ever learns to
    catch it, this flips and the docs get updated."""
    _, ck = run_checked(_scan_program, 2, seed=11, annotate=False,
                        ordered=False)
    assert ck.clean


def test_annotated_ordered_scan_is_clean():
    _, ck = run_checked(_scan_program, 2, seed=11, annotate=True,
                        ordered=True)
    assert ck.clean, [v.describe() for v in ck.violations]


def test_note_local_rejects_bad_kind():
    def program(ctx):
        win = yield from ctx.rma.win_allocate(64, disp_unit=8)
        yield from win.lock_all()
        try:
            win.note_local("write", 8)
        except ValueError:
            caught = True
        else:
            caught = False
        yield from win.unlock_all()
        yield from ctx.coll.barrier()
        return caught

    res, _ = run_checked(program, 2, seed=11)
    assert res.returns[0] is True


# ----------------------------------------------------------------------
# the kvstore CAS-update access pattern, with and without the MCS lock
# ----------------------------------------------------------------------
def _cas_update_program(ctx, locked: bool):
    """Both ranks read-modify word 1 of rank 0 via get + CAS -- the
    kvstore update path distilled.  ``locked`` wraps each critical
    section in the MCS lock (and flushes before release), which is what
    the real store does."""
    win = yield from ctx.rma.win_allocate(64, disp_unit=8)
    lock = McsLock(win, cell_base=CTRL_WORDS_BASE
                   + win.params.pscw_ring_capacity)
    yield from win.lock_all()
    for _ in range(2):
        if locked:
            yield from lock.acquire()
        got = yield from win.get_blocking(0, 1, 8, np.int64)
        cur = int(got[0])
        yield from win.flush(0)
        yield from win.compare_and_swap(np.int64(cur), np.int64(cur + 1),
                                        0, 1)
        yield from win.flush(0)
        if locked:
            yield from lock.release()
    yield from ctx.coll.barrier()
    final = None
    if ctx.rank == 0:
        got = yield from win.get_blocking(0, 1, 8, np.int64)
        final = int(got[0])
        yield from win.flush(0)
    yield from win.unlock_all()
    yield from ctx.coll.barrier()
    return final


def test_cas_update_under_mcs_lock_is_clean():
    res, ck = run_checked(_cas_update_program, 2, seed=11, locked=True)
    assert ck.clean, [v.describe() for v in ck.violations]
    # the lock also makes the read-modify-write sequentially consistent
    assert res.returns[0] == 4


def test_cas_update_without_lock_is_flagged():
    with pytest.raises(RuntimeError):
        # without mutual exclusion the CAS itself can observe a stale
        # read and fail -- either way the checker must flag the get/cas
        # overlap; tolerate both completions
        res, ck = run_checked(_cas_update_program, 2, seed=11,
                              locked=False)
        for r in res.returns:
            if isinstance(r, BaseException):
                raise r
        raise RuntimeError("completed without raising")
    # rerun purely for the checker verdict, swallowing rank errors
    res, ck = run_checked(_cas_update_program, 2, seed=11, locked=False)
    assert not ck.clean
    kinds = {frozenset((v.first.kind, v.second.kind))
             for v in ck.violations}
    assert frozenset(("get", "cas")) in kinds
