"""``repro check`` CLI: exit codes, report content, script mode, and the
capture-sink plumbing behind it."""

import numpy as np

from repro.__main__ import main
from repro.check.core import active_check_capture, check_capture
from repro.config import SimConfig
from repro.runtime.job import run_spmd


def test_check_clean_workload_exits_zero(capsys):
    assert main(["check", "clean_put_put", "--seed", "11"]) == 0
    out = capsys.readouterr().out
    assert "no races detected" in out


def test_check_racy_workload_exits_one(capsys):
    assert main(["check", "racy_put_put", "--seed", "11"]) == 1
    out = capsys.readouterr().out
    assert "race[put-put]" in out
    assert "by rank" in out


def test_check_perturb_sweep_reports_reproducers(capsys):
    assert main(["check", "racy_latent", "--seed", "11",
                 "--perturb", "3"]) == 1
    out = capsys.readouterr().out
    assert "perturbation sweep" in out
    assert "schedules manifested races" in out
    assert "reproduce: repro check racy_latent" in out


def test_check_script_mode(tmp_path, capsys):
    """A .py script that runs its own simulations is captured and
    checked; a racy script makes the command exit 1."""
    script = tmp_path / "racy.py"
    script.write_text(
        "import numpy as np\n"
        "from repro.config import SimConfig\n"
        "from repro.runtime.job import run_spmd\n"
        "\n"
        "def program(ctx):\n"
        "    win = yield from ctx.rma.win_allocate(8)\n"
        "    yield from win.lock_all()\n"
        "    yield from win.put(np.full(8, ctx.rank, np.uint8), 0, 0)\n"
        "    yield from win.flush(0)\n"
        "    yield from win.unlock_all()\n"
        "    yield from ctx.coll.barrier()\n"
        "    yield from win.free()\n"
        "\n"
        "run_spmd(program, 4, sim=SimConfig(seed=11))\n")
    assert main(["check", str(script)]) == 1
    assert "race[put-put]" in capsys.readouterr().out


def test_check_script_mode_clean(tmp_path, capsys):
    script = tmp_path / "clean.py"
    script.write_text(
        "import numpy as np\n"
        "from repro.config import SimConfig\n"
        "from repro.runtime.job import run_spmd\n"
        "\n"
        "def program(ctx):\n"
        "    win = yield from ctx.rma.win_allocate(8 * ctx.nranks)\n"
        "    yield from win.lock_all()\n"
        "    yield from win.put(np.full(8, 1, np.uint8), 0, 8 * ctx.rank)\n"
        "    yield from win.flush(0)\n"
        "    yield from win.unlock_all()\n"
        "    yield from ctx.coll.barrier()\n"
        "    yield from win.free()\n"
        "\n"
        "run_spmd(program, 4, sim=SimConfig(seed=11))\n")
    assert main(["check", str(script)]) == 0
    assert "no races detected" in capsys.readouterr().out


def test_check_capture_attaches_checker_to_every_run():
    def program(ctx):
        win = yield from ctx.rma.win_allocate(8)
        yield from win.fence()
        yield from win.put(np.full(8, 1, np.uint8),
                           (ctx.rank + 1) % ctx.nranks, 0)
        yield from win.fence(no_succeed=True)
        yield from win.free()

    with check_capture() as checkers:
        r1 = run_spmd(program, 4, sim=SimConfig(seed=5))
        r2 = run_spmd(program, 2, sim=SimConfig(seed=5))
    assert len(checkers) == 2
    assert r1.check is checkers[0] and r2.check is checkers[1]
    assert all(ck.clean for ck in checkers)
    assert active_check_capture() is None


def test_check_capture_nesting_keeps_outer_sink():
    def program(ctx):
        yield from ctx.coll.barrier()

    with check_capture() as outer:
        with check_capture() as inner:
            run_spmd(program, 2)
        assert inner is outer
    assert len(outer) == 1
