"""Unit tests for the consolidated epoch-rule module (always-on subset)."""

from types import SimpleNamespace

import pytest

from repro.check import epochs
from repro.errors import EpochError
from repro.rma.enums import LockType


def _win(mode, *, exposure=None, held=None, access_group=None):
    return SimpleNamespace(
        rank=0,
        epoch_access=mode,
        epoch_exposure=exposure,
        lock_state=SimpleNamespace(held=held or {}),
        pscw_state=SimpleNamespace(access_group=access_group or set()))


def test_access_outside_epoch_rejected():
    with pytest.raises(EpochError, match="outside any access epoch"):
        epochs.require_access(_win(None), 1)


def test_access_to_unlocked_target_rejected():
    win = _win("lock", held={2: LockType.SHARED})
    epochs.require_access(win, 2)  # locked target: fine
    with pytest.raises(EpochError, match="not locked"):
        epochs.require_access(win, 1)


def test_access_outside_pscw_group_rejected():
    win = _win("pscw", access_group={1, 3})
    epochs.require_access(win, 3)
    with pytest.raises(EpochError, match="not in the PSCW access"):
        epochs.require_access(win, 2)


def test_fence_and_lock_all_cover_every_target():
    for mode in ("fence", "lock_all"):
        epochs.require_access(_win(mode), 7)


def test_flush_requires_epoch():
    for mode in epochs.FLUSH_MODES:
        epochs.require_flush(_win(mode))
    with pytest.raises(EpochError, match="flush outside"):
        epochs.require_flush(_win(None))


def test_epoch_context_labels():
    assert epochs.epoch_context(_win(None)) == "none"
    assert epochs.epoch_context(_win(None, exposure="pscw")) == \
        "exposure:pscw"
    assert epochs.epoch_context(_win("fence")) == "fence"
    assert epochs.epoch_context(_win("lock_all")) == "lock_all"
    win = _win("lock", held={0: LockType.EXCLUSIVE, 2: LockType.SHARED})
    assert epochs.epoch_context(win) == "lock(0:exclusive,2:shared)"
