"""Vector-clock engine unit tests."""

from repro.check.vclock import VectorClock


def test_fresh_clock_owns_one_tick():
    c = VectorClock(3, 0)
    assert c[0] == 1
    assert c[1] == 0 and c[2] == 0
    assert len(c) == 3


def test_tick_advances_only_own_component():
    c = VectorClock(3, 1)
    c.tick(1)
    assert c[1] == 2
    assert c[0] == 0 and c[2] == 0


def test_copy_is_independent():
    c = VectorClock(2, 0)
    snap = c.copy()
    c.tick(0)
    assert snap[0] == 1
    assert c[0] == 2


def test_merge_is_componentwise_max():
    a = VectorClock(3, 0)
    b = VectorClock(3, 2)
    b.tick(2)
    a.merge(b)
    assert a.c == [1, 0, 2]


def test_leq_defines_happens_before():
    a = VectorClock(2, 0)
    b = VectorClock(2, 1)
    # Concurrent: neither dominates.
    assert not a.leq(b) and not b.leq(a)
    # After b acquires a's clock, a <= b.
    b.merge(a)
    b.tick(1)
    assert a.leq(b) and not b.leq(a)


def test_equality():
    a = VectorClock(2, 0)
    b = VectorClock(2, 0)
    assert a == b
    b.tick(0)
    assert a != b
    assert a != [1, 0]
