"""Address spaces and segments."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import MemoryError_
from repro.mem.address_space import MMAP_REGION_LO, AddressSpace, Segment


def test_alloc_and_rw():
    sp = AddressSpace(0)
    seg = sp.alloc(64, label="x")
    seg.write(0, np.arange(8, dtype=np.uint8))
    assert seg.read(0, 8).tolist() == list(range(8))
    assert seg.read(2, 3).tolist() == [2, 3, 4]


def test_write_view_typed():
    sp = AddressSpace(0)
    seg = sp.alloc(64)
    seg.typed(np.int64)[0] = -5
    assert seg.typed(np.int64)[0] == -5
    v = seg.view(0, 8)
    v[:] = 255
    assert seg.read(0, 1)[0] == 255


def test_out_of_range_access():
    sp = AddressSpace(0)
    seg = sp.alloc(16)
    with pytest.raises(MemoryError_):
        seg.read(10, 10)
    with pytest.raises(MemoryError_):
        seg.write(-1, b"x")
    with pytest.raises(MemoryError_):
        seg.typed(np.int64, offset=0, count=3)


def test_freed_segment_access_raises():
    sp = AddressSpace(0)
    seg = sp.alloc(16)
    sp.free(seg)
    with pytest.raises(MemoryError_):
        seg.read(0, 1)
    with pytest.raises(MemoryError_):
        sp.free(seg)  # double free


def test_alloc_at_collision_returns_none():
    sp = AddressSpace(0)
    seg = sp.alloc(0x2000)
    assert sp.alloc_at(seg.vaddr, 16) is None
    assert sp.alloc_at(seg.vaddr + 0x1000, 0x2000) is None  # overlap tail
    other = sp.alloc_at(seg.vaddr + 0x10000, 16)
    assert other is not None


def test_alloc_at_out_of_region():
    sp = AddressSpace(0)
    assert sp.alloc_at(0x1000, 16) is None  # below MMAP_REGION_LO


def test_segment_at_resolution():
    sp = AddressSpace(0)
    seg = sp.alloc(256)
    got, off = sp.segment_at(seg.vaddr + 100)
    assert got is seg and off == 100
    with pytest.raises(MemoryError_):
        sp.segment_at(MMAP_REGION_LO - 1)


def test_reserved_bytes_accounting():
    sp = AddressSpace(0)
    a = sp.alloc(100)
    b = sp.alloc(200)
    assert sp.reserved_bytes() == 300
    sp.free(a)
    assert sp.reserved_bytes() == 200


def test_negative_size_rejected():
    with pytest.raises(MemoryError_):
        Segment(0, 1, MMAP_REGION_LO, -1)


@given(st.lists(st.integers(1, 4096), min_size=1, max_size=30))
def test_allocations_never_overlap(sizes):
    sp = AddressSpace(0)
    segs = [sp.alloc(s) for s in sizes]
    spans = sorted((s.vaddr, s.vaddr + s.size) for s in segs)
    for (lo1, hi1), (lo2, _hi2) in zip(spans, spans[1:]):
        assert hi1 <= lo2
