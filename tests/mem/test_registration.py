"""Registration tables and the symmetric-heap primitives."""

import numpy as np
import pytest

from repro.errors import RegistrationError
from repro.mem.address_space import AddressSpace
from repro.mem.registration import RegistrationTable
from repro.mem.symheap import SymHeapState, propose_address, try_symmetric_alloc


def _setup():
    sp = AddressSpace(3)
    rt = RegistrationTable(3)
    return sp, rt


def test_register_resolve_roundtrip():
    sp, rt = _setup()
    seg = sp.alloc(128)
    desc = rt.register(seg)
    assert rt.resolve(desc) is seg
    assert desc.rank == 3
    assert desc.contains(seg.vaddr, 128)
    assert not desc.contains(seg.vaddr + 1, 128)


def test_foreign_memory_rejected():
    _sp, rt = _setup()
    other = AddressSpace(9).alloc(16)
    with pytest.raises(RegistrationError):
        rt.register(other)


def test_stale_descriptor_rejected():
    sp, rt = _setup()
    seg = sp.alloc(64)
    desc = rt.register(seg)
    rt.deregister(desc)
    with pytest.raises(RegistrationError):
        rt.resolve(desc)
    with pytest.raises(RegistrationError):
        rt.deregister(desc)


def test_reregistration_bumps_generation():
    sp, rt = _setup()
    seg = sp.alloc(64)
    d1 = rt.register(seg)
    d2 = rt.register(seg)
    assert d2.generation > d1.generation
    with pytest.raises(RegistrationError):
        rt.resolve(d1)  # old generation is stale
    assert rt.resolve(d2) is seg


def test_resolve_va():
    sp, rt = _setup()
    seg = sp.alloc(256)
    rt.register(seg)
    assert rt.resolve_va(seg.vaddr + 10, 8) is seg
    with pytest.raises(RegistrationError):
        rt.resolve_va(seg.vaddr + 250, 8)  # overruns
    with pytest.raises(RegistrationError):
        rt.resolve_va(0x1234, 1)


def test_descriptor_for_va():
    sp, rt = _setup()
    seg = sp.alloc(64)
    desc = rt.register(seg)
    assert rt.descriptor_for_va(seg.vaddr, 8) == desc


def test_registered_count():
    sp, rt = _setup()
    a, b = sp.alloc(8), sp.alloc(8)
    da = rt.register(a)
    rt.register(b)
    assert rt.registered_count() == 2
    rt.deregister(da)
    assert rt.registered_count() == 1


# ---------------------------------------------------------------------------
# symmetric heap primitives
# ---------------------------------------------------------------------------
def test_propose_address_page_aligned_and_deterministic():
    rng1 = np.random.default_rng(5)
    rng2 = np.random.default_rng(5)
    a1 = propose_address(rng1, 4096)
    a2 = propose_address(rng2, 4096)
    assert a1 == a2
    assert a1 % 0x1000 == 0


def test_try_symmetric_alloc_success_and_failure():
    sp = AddressSpace(0)
    state = SymHeapState()
    addr = propose_address(np.random.default_rng(1), 1 << 16)
    seg = try_symmetric_alloc(sp, addr, 1 << 16, state)
    assert seg is not None and seg.vaddr == addr
    # same address again collides
    again = try_symmetric_alloc(sp, addr, 16, state)
    assert again is None
    assert state.attempts == 2 and state.failures == 1
    assert state.segments == [seg]
