"""Atomic cell arrays: ops, wrap-around, watchers, SegmentCells parity."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import MemoryError_
from repro.mem.address_space import AddressSpace
from repro.mem.atomic import MASK64, AtomicArray, SegmentCells
from repro.sim.kernel import Environment


@pytest.fixture
def cells(env):
    return AtomicArray(env, 8, name="t")


def test_load_store(cells):
    cells.store(0, 42)
    assert cells.load(0) == 42
    assert len(cells) == 8


def test_fadd_returns_old(cells):
    assert cells.fadd(1, 5) == 0
    assert cells.fadd(1, 3) == 5
    assert cells.load(1) == 8


def test_fadd_negative_wraps(cells):
    cells.store(0, 1)
    cells.fadd(0, -2)
    assert cells.load(0) == MASK64  # two's complement wrap
    assert cells.load_signed(0) == -1


def test_cas(cells):
    assert cells.cas(0, 0, 7) == 0
    assert cells.load(0) == 7
    assert cells.cas(0, 0, 9) == 7  # fails, returns current
    assert cells.load(0) == 7


def test_swap(cells):
    cells.store(0, 3)
    assert cells.swap(0, 10) == 3
    assert cells.load(0) == 10


@pytest.mark.parametrize("op,a,b,expect", [
    ("add", 5, 3, 8),
    ("and", 0b1100, 0b1010, 0b1000),
    ("or", 0b1100, 0b1010, 0b1110),
    ("xor", 0b1100, 0b1010, 0b0110),
    ("min", 5, 3, 3),
    ("min", 3, 5, 3),
    ("max", 5, 3, 5),
    ("replace", 5, 3, 3),
])
def test_apply_ops(cells, op, a, b, expect):
    cells.store(0, a)
    assert cells.apply(0, op, b) == a
    assert cells.load(0) == expect


def test_signed_min_max(cells):
    cells.store(0, MASK64)  # -1 signed
    cells.apply(0, "min", 5)
    assert cells.load_signed(0) == -1
    cells.apply(0, "max", 5)
    assert cells.load(0) == 5


def test_unknown_op_rejected(cells):
    with pytest.raises(MemoryError_):
        cells.apply(0, "mul", 2)


def test_index_bounds(cells):
    with pytest.raises(MemoryError_):
        cells.load(8)
    with pytest.raises(MemoryError_):
        cells.fadd(-1, 1)


def test_watcher_immediate(env, cells):
    cells.store(2, 10)
    ev = cells.wait_until(2, lambda v: v >= 10)
    assert ev.triggered and ev.value == 10


def test_watcher_fires_on_mutation(env, cells):
    fired = {}

    def waiter():
        val = yield cells.wait_until(3, lambda v: v >= 2)
        fired["val"] = val
        fired["t"] = env.now

    def mutator():
        yield env.timeout(10)
        cells.fadd(3, 1)
        yield env.timeout(10)
        cells.fadd(3, 1)  # now the predicate holds

    env.process(waiter())
    env.process(mutator())
    env.run()
    assert fired == {"val": 2, "t": 20}


def test_watcher_multiple_waiters(env, cells):
    hits = []

    def waiter(th):
        yield cells.wait_until(0, lambda v, t=th: v >= t)
        hits.append(th)

    env.process(waiter(1))
    env.process(waiter(3))

    def mutate():
        yield env.timeout(1)
        cells.fadd(0, 2)   # wakes threshold 1 only
        yield env.timeout(1)
        cells.fadd(0, 2)   # wakes threshold 3

    env.process(mutate())
    env.run()
    assert hits == [1, 3]


# ---------------------------------------------------------------------------
# SegmentCells must behave identically to AtomicArray for every op
# ---------------------------------------------------------------------------
OPS = ["add", "and", "or", "xor", "min", "max", "replace"]


@given(st.lists(st.tuples(st.sampled_from(OPS),
                          st.integers(-(2**63), 2**63 - 1)),
                max_size=30))
def test_segment_cells_match_atomic_array(ops):
    env = Environment()
    arr = AtomicArray(env, 1)
    sp = AddressSpace(0)
    seg = sp.alloc(8)
    sc = SegmentCells(seg, 0, signed=True)
    for op, operand in ops:
        a_old = arr.apply(0, op, operand)
        s_old = sc.apply(0, op, operand)
        assert a_old == s_old
        assert arr.load(0) == sc.load(0)


def test_segment_cells_cas_fadd():
    sp = AddressSpace(0)
    seg = sp.alloc(32)
    sc = SegmentCells(seg, 8)
    assert sc.fadd(0, 4) == 0
    assert sc.cas(0, 4, 9) == 4
    assert sc.load(0) == 9
    assert sc.swap(1, 3) == 0
    # base_offset=8: the first 8 bytes of the segment are untouched
    assert seg.read(0, 8).tolist() == [0] * 8


def test_segment_cells_alignment_check():
    sp = AddressSpace(0)
    seg = sp.alloc(32)
    with pytest.raises(MemoryError_):
        SegmentCells(seg, 3)


def test_segment_cells_unknown_op():
    sp = AddressSpace(0)
    seg = sp.alloc(8)
    with pytest.raises(MemoryError_):
        SegmentCells(seg).apply(0, "nand", 1)
