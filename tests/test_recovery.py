"""Survivor-side fault recovery (repro.runtime.notify + repro.rma.recovery).

Every scenario crashes a rank in a specific protocol role -- lock holder,
MCS queue head/middle/tail waiter, fence participant, PSCW origin/target,
hashtable owner -- and asserts that the survivors *terminate* with
structured errors (RankFailedError / EpochError / NodeCrashedError):
never a LivelockError, never the max_events backstop, never a hang.

Recovery is fully deterministic under the run seed, so a recovered run
replays bit-identically; and every recovery hook is behind a single
``notifier is None`` gate, so fault-free runs stay byte-identical to the
unhardened code (checked by the tier-1 determinism suite).
"""

import json
import os

import pytest

from repro import run_spmd
from repro.config import (
    FaultConfig,
    FaultPlan,
    MachineConfig,
    NicStall,
    NodeCrash,
    RecoveryConfig,
    SimConfig,
)
from repro.errors import (
    EpochError,
    FaultError,
    LivelockError,
    NodeCrashedError,
    RankFailedError,
)
from repro.rma.enums import LockType
from repro.rma.mcs import McsLock

INTER = MachineConfig(ranks_per_node=1)


def crash_plan(*nodes_times):
    return FaultConfig(plan=FaultPlan(crashes=tuple(
        NodeCrash(node=n, time_ns=t) for n, t in nodes_times)))


def _fingerprint(res):
    return (res.sim_time_ns, res.events_processed, repr(res.returns),
            json.dumps(res.stats, sort_keys=True, default=str))


# ---------------------------------------------------------------------------
# two-level lock revocation
# ---------------------------------------------------------------------------
def _exclusive_holder_program(ctx):
    win = yield from ctx.rma.win_allocate(256)
    if ctx.rank == 1:
        yield from win.lock(0, LockType.EXCLUSIVE)
        yield ctx.env.timeout(10_000_000)  # crashes while holding
        yield from win.unlock(0)
    else:
        yield ctx.env.timeout(20_000)
        yield from win.lock(0, LockType.EXCLUSIVE)
        yield from win.unlock(0)
    return ("ok", ctx.rank)


def test_exclusive_holder_crash_revoked():
    """Rank 1 dies holding an exclusive lock: both its WRITER bit and its
    global-word registration are rolled back, so survivors acquire."""
    res = run_spmd(_exclusive_holder_program, 3, machine=INTER,
                   faults=crash_plan((1, 50_000)))
    assert res.returns[0] == ("ok", 0)
    assert res.returns[2] == ("ok", 2)
    assert isinstance(res.returns[1], NodeCrashedError)
    rec = res.stats["recovery"]
    assert rec["failures_detected"] == 1
    assert rec["locks_revoked"] >= 2  # local WRITER bit + global word
    assert rec["notifications_delivered"] == 2


def test_lock_all_holder_crash_revoked():
    """Rank 2 dies inside a lock_all epoch: its global shared count is
    rolled back and a survivor's exclusive lock proceeds."""
    def program(ctx):
        win = yield from ctx.rma.win_allocate(256)
        if ctx.rank == 2:
            yield from win.lock_all()
            yield ctx.env.timeout(10_000_000)
            yield from win.unlock_all()
        else:
            yield ctx.env.timeout(20_000)
            yield from win.lock(0, LockType.EXCLUSIVE)
            yield from win.unlock(0)
        return ("ok", ctx.rank)

    res = run_spmd(program, 3, machine=INTER,
                   faults=crash_plan((2, 50_000)))
    assert res.returns[0] == ("ok", 0)
    assert res.returns[1] == ("ok", 1)
    assert res.stats["recovery"]["locks_revoked"] >= 1


def test_lock_dead_target_fails_structured():
    """A new lock() addressed to a known-dead rank fails immediately with
    RankFailedError (not a retry loop into the watchdog)."""
    def program(ctx):
        win = yield from ctx.rma.win_allocate(256)
        if ctx.rank == 0:
            yield ctx.env.timeout(100_000)  # past crash + notification
            with pytest.raises(RankFailedError) as exc:
                yield from win.lock(1, LockType.EXCLUSIVE)
            assert exc.value.failed_ranks == (1,)
            return "refused"
        yield ctx.env.timeout(10_000_000)

    res = run_spmd(program, 2, machine=INTER,
                   faults=crash_plan((1, 30_000)))
    assert res.returns[0] == "refused"
    assert res.stats["recovery"]["acquisitions_failed"] == 1


def test_revocation_disabled_fails_pending_acquire():
    """With revoke_locks=False a dead holder's word is never cleared; the
    spinning survivor gets a structured RankFailedError instead of a
    livelock."""
    faults = FaultConfig(
        plan=FaultPlan(crashes=(NodeCrash(node=1, time_ns=50_000),)),
        recovery=RecoveryConfig(revoke_locks=False))

    def program(ctx):
        win = yield from ctx.rma.win_allocate(256)
        if ctx.rank == 1:
            yield from win.lock(0, LockType.EXCLUSIVE)
            yield ctx.env.timeout(10_000_000)
        else:
            yield ctx.env.timeout(20_000)
            with pytest.raises(RankFailedError) as exc:
                yield from win.lock(0, LockType.EXCLUSIVE)
            assert 1 in exc.value.failed_ranks
            return "refused"

    res = run_spmd(program, 2, machine=INTER, faults=faults)
    assert res.returns[0] == "refused"
    assert res.stats["recovery"]["locks_revoked"] == 0
    assert res.stats["recovery"]["acquisitions_failed"] >= 1


# ---------------------------------------------------------------------------
# MCS queue splicing (zombie forwarders)
# ---------------------------------------------------------------------------
def _mcs_program(ctx, victim):
    win = yield from ctx.rma.win_allocate(256)
    lock = McsLock(win)
    # Stagger the enqueue so the queue order equals rank order: rank 0
    # holds; ranks 1..p-1 are head/middle/tail waiters.
    yield ctx.env.timeout(1_000 * ctx.rank)
    yield from lock.acquire()
    if ctx.rank == victim:
        yield ctx.env.timeout(10_000_000)  # crashes holding / in queue
    yield ctx.env.timeout(500)
    yield from lock.release()
    return ("ok", ctx.rank)


def _mcs_victim_program(ctx, victim):
    # Same as _mcs_program, but the victim dies while *waiting* (it never
    # reaches acquire's return when it is not the holder).
    win = yield from ctx.rma.win_allocate(256)
    lock = McsLock(win)
    yield ctx.env.timeout(1_000 * ctx.rank)
    if ctx.rank == 0 and victim != 0:
        # The holder keeps the lock until well past the crash so the
        # victim dies inside the waiter queue.
        yield from lock.acquire()
        yield ctx.env.timeout(120_000)
        yield from lock.release()
        return ("ok", ctx.rank)
    yield from lock.acquire()
    if ctx.rank == victim:
        yield ctx.env.timeout(10_000_000)
    yield ctx.env.timeout(500)
    yield from lock.release()
    return ("ok", ctx.rank)


@pytest.mark.parametrize("victim,role", [
    (0, "holder"),
    (1, "head waiter"),
    (2, "middle waiter"),
    (3, "tail waiter"),
])
def test_mcs_crash_roles(victim, role):
    """Kill the MCS participant in each queue position: the zombie
    forwarder passes (or retires) the token and every survivor completes
    an acquire/release cycle."""
    prog = _mcs_program if victim == 0 else _mcs_victim_program
    res = run_spmd(prog, 4, victim, machine=INTER,
                   faults=crash_plan((victim, 50_000)))
    for r in range(4):
        if r == victim:
            assert isinstance(res.returns[r], NodeCrashedError)
        else:
            assert res.returns[r] == ("ok", r), f"{role}: rank {r} stuck"
    assert res.stats["recovery"]["queue_splices"] == 1


def test_mcs_adjacent_dead_waiters_chain():
    """Two adjacent dead waiters: each zombie hands the token to the next
    (the chained-forwarder case)."""
    res = run_spmd(_mcs_victim_program, 5, 2, machine=INTER,
                   faults=crash_plan((2, 50_000), (3, 50_000)))
    for r in (0, 1, 4):
        assert res.returns[r] == ("ok", r)
    assert res.stats["recovery"]["queue_splices"] == 2


# ---------------------------------------------------------------------------
# epoch fault containment
# ---------------------------------------------------------------------------
def test_fence_participant_crash_contained():
    """A fence with a dead participant completes on every survivor with
    EpochError(failed_ranks=...) -- not a barrier that never returns."""
    def program(ctx):
        win = yield from ctx.rma.win_allocate(256)
        yield from win.fence()
        if ctx.rank == 2:
            yield ctx.env.timeout(10_000_000)
        with pytest.raises(EpochError) as exc:
            yield from win.fence()
        assert exc.value.failed_ranks == (2,)
        assert win.epoch_access is None  # the epoch was closed
        return "contained"

    res = run_spmd(program, 4, machine=INTER,
                   faults=crash_plan((2, 60_000)))
    for r in (0, 1, 3):
        assert res.returns[r] == "contained"
    assert res.stats["recovery"]["epochs_failed"] == 3


def test_pscw_origin_crash_fails_wait():
    """The exposing rank's wait() fails structurally when an access-group
    rank dies before calling complete()."""
    def program(ctx):
        win = yield from ctx.rma.win_allocate(256)
        if ctx.rank == 0:
            yield from win.post([1])
            with pytest.raises(EpochError) as exc:
                yield from win.wait()
            assert exc.value.failed_ranks == (1,)
            return "contained"
        yield from win.start([0])
        yield ctx.env.timeout(10_000_000)  # dies before complete()

    res = run_spmd(program, 2, machine=INTER,
                   faults=crash_plan((1, 50_000)))
    assert res.returns[0] == "contained"
    assert res.stats["recovery"]["epochs_failed"] == 1


def test_pscw_target_crash_fails_start_and_complete():
    """A dead exposing rank fails the origin's start() (its post can
    never arrive); a target dying mid-epoch fails complete()."""
    def never_posts(ctx):
        win = yield from ctx.rma.win_allocate(256)
        if ctx.rank == 0:
            with pytest.raises(EpochError) as exc:
                yield from win.start([1])
            assert exc.value.failed_ranks == (1,)
            return "contained"
        yield ctx.env.timeout(10_000_000)  # never posts

    res = run_spmd(never_posts, 2, machine=INTER,
                   faults=crash_plan((1, 30_000)))
    assert res.returns[0] == "contained"

    def dies_mid_epoch(ctx):
        win = yield from ctx.rma.win_allocate(256)
        if ctx.rank == 0:
            yield from win.post([1])
            yield ctx.env.timeout(10_000_000)  # dies before wait()
            yield from win.wait()
        else:
            yield from win.start([0])
            yield ctx.env.timeout(200_000)  # outlive the crash
            with pytest.raises(EpochError) as exc:
                yield from win.complete()
            assert exc.value.failed_ranks == (0,)
            assert win.epoch_access is None
            return "contained"

    res = run_spmd(dies_mid_epoch, 2, machine=INTER,
                   faults=crash_plan((0, 50_000)))
    assert res.returns[1] == "contained"


def test_win_free_degrades_with_dead_participant():
    """Collective win_free with a dead rank: survivors free locally
    (degraded) instead of hanging on the closing barrier."""
    def program(ctx):
        win = yield from ctx.rma.win_allocate(256)
        if ctx.rank == 1:
            yield ctx.env.timeout(10_000_000)
        yield ctx.env.timeout(100_000)
        yield from win.free()
        assert win.freed
        return "freed"

    res = run_spmd(program, 3, machine=INTER,
                   faults=crash_plan((1, 30_000)))
    assert res.returns[0] == "freed"
    assert res.returns[2] == "freed"
    assert res.stats["recovery"]["degraded_frees"] == 2
    # The dead rank's window heap segment was reclaimed too.
    assert res.stats["recovery"]["regions_reclaimed"] >= 1


def test_dynamic_regions_of_dead_rank_reclaimed():
    """A dead rank's dynamic attach list is deregistered by recovery."""
    import numpy as np

    def program(ctx):
        win = yield from ctx.rma.win_create_dynamic()
        if ctx.rank == 1:
            seg = ctx.space.alloc(512, label="dyn")
            yield from win.attach(seg)
            yield ctx.env.timeout(10_000_000)
        else:
            yield ctx.env.timeout(200_000)
        return "ok"

    res = run_spmd(program, 2, machine=INTER,
                   faults=crash_plan((1, 50_000)))
    assert res.returns[0] == "ok"
    assert res.stats["recovery"]["regions_reclaimed"] >= 1


# ---------------------------------------------------------------------------
# application-level containment: hashtable owner crash
# ---------------------------------------------------------------------------
def test_hashtable_owner_crash_contained():
    """Crash a hashtable owner mid-insert volley: survivors either finish
    or abort with a structured FaultError -- the run always terminates."""
    from repro.apps.hashtable.common import HashTableLayout, random_keys
    from repro.apps.hashtable.rma_ht import rma_insert

    layout = HashTableLayout(table_slots=64, heap_cells=128)

    def program(ctx):
        win = yield from ctx.rma.win_allocate(layout.nbytes, disp_unit=8)
        keys = random_keys(ctx.rng("ht-keys"), 32)
        yield from win.lock_all()
        inserted = 0
        try:
            for k in keys:
                yield from rma_insert(win, layout, int(k))
                inserted += 1
        except FaultError as exc:
            return ("aborted", inserted, type(exc).__name__)
        yield from win.unlock_all()
        return ("done", inserted)

    res = run_spmd(program, 4, machine=INTER,
                   faults=crash_plan((2, 80_000)))
    assert isinstance(res.returns[2], NodeCrashedError)
    outcomes = [res.returns[r] for r in (0, 1, 3)]
    # Any survivor that addressed the dead owner aborted structurally.
    assert all(o[0] in ("done", "aborted") for o in outcomes)
    assert any(o[0] == "aborted" for o in outcomes)


# ---------------------------------------------------------------------------
# determinism: recovered runs replay bit-identically
# ---------------------------------------------------------------------------
def test_recovered_run_replays_bit_identically():
    a = run_spmd(_mcs_victim_program, 4, 2, machine=INTER,
                 faults=crash_plan((2, 50_000)))
    b = run_spmd(_mcs_victim_program, 4, 2, machine=INTER,
                 faults=crash_plan((2, 50_000)))
    assert _fingerprint(a) == _fingerprint(b)

    c = run_spmd(_exclusive_holder_program, 3, machine=INTER,
                 faults=crash_plan((1, 50_000)))
    d = run_spmd(_exclusive_holder_program, 3, machine=INTER,
                 faults=crash_plan((1, 50_000)))
    assert _fingerprint(c) == _fingerprint(d)


def test_recovery_terminates_under_strict_watchdog():
    """The whole point: with the watchdog armed aggressively, recovery
    finishes without tripping LivelockError or the event backstop."""
    sim = SimConfig(watchdog_interval=256, watchdog_stalls=8)
    try:
        res = run_spmd(_exclusive_holder_program, 3, machine=INTER, sim=sim,
                       faults=crash_plan((1, 50_000)))
    except LivelockError as exc:  # pragma: no cover - the failure mode
        pytest.fail(f"recovery livelocked: {exc}")
    assert res.returns[0] == ("ok", 0)


# ---------------------------------------------------------------------------
# satellite: collective fault annotation
# ---------------------------------------------------------------------------
def test_collective_error_names_collective_and_ranks():
    def program(ctx):
        if ctx.rank == 1:
            yield ctx.env.timeout(10_000_000)
        yield ctx.env.timeout(100_000)
        with pytest.raises(NodeCrashedError) as exc:
            yield from ctx.coll.allreduce(ctx.rank)
        assert exc.value.collective == "allreduce"
        assert exc.value.collective_ranks == (0, 1)
        assert "in collective 'allreduce'" in str(exc.value)
        return "annotated"

    res = run_spmd(program, 2, machine=INTER,
                   faults=crash_plan((1, 30_000)))
    assert res.returns[0] == "annotated"


def test_collective_annotation_innermost_wins():
    """Nested collectives: the first (innermost) annotation sticks."""
    def program(ctx):
        if ctx.rank == 1:
            yield ctx.env.timeout(10_000_000)
        yield ctx.env.timeout(100_000)
        with pytest.raises(NodeCrashedError) as exc:
            # reduce_scatter_block falls back to allreduce for p=2 via
            # the non-power-of-two path only for p not power of two; for
            # p=2 it uses recursive halving -- still annotated.
            yield from ctx.coll.barrier()
        assert exc.value.collective == "barrier"
        return "ok"

    res = run_spmd(program, 2, machine=INTER,
                   faults=crash_plan((1, 30_000)))
    assert res.returns[0] == "ok"


# ---------------------------------------------------------------------------
# retransmit chains that straddle a crash
# ---------------------------------------------------------------------------
def _put_stream_program(ctx):
    import numpy as np
    win = yield from ctx.rma.win_allocate(4096)
    yield from win.lock_all()
    if ctx.rank == 0:
        data = np.ones(64, np.uint8)
        for i in range(40):
            yield from win.put(data, 1, 64 * i)
            yield from win.flush(1)
    yield from win.unlock_all()
    return "ok"


def test_crash_straddling_retransmits_convert_to_crash_error():
    """Rank 1 dies while rank 0's put stream is in flight: deliveries
    planned past the crash instant come back lost, and the origin's
    retransmit chain must surface NodeCrashedError at the first attempt
    planned past the crash, NOT a DeadlineError after exhausting all 64
    retries against a dead node (which would also reserve ~3 ms of
    injection-channel slots per op)."""
    faults = crash_plan((1, 30_000))
    res = run_spmd(_put_stream_program, 2, machine=INTER, faults=faults)
    assert isinstance(res.returns[0], NodeCrashedError)
    # Far fewer retransmits than a full 65-attempt exhaustion per put.
    assert res.stats["retransmits"] < 65
    # Deterministic replay of the recovered schedule.
    res2 = run_spmd(_put_stream_program, 2, machine=INTER, faults=faults)
    assert _fingerprint(res) == _fingerprint(res2)


# ---------------------------------------------------------------------------
# satellite: construction-time validation
# ---------------------------------------------------------------------------
def test_fault_plan_validation():
    with pytest.raises(ValueError, match="drop_prob"):
        FaultPlan(drop_prob=1.5)
    with pytest.raises(ValueError, match="delay_ns"):
        FaultPlan(delay_prob=0.1, delay_ns=-5)
    with pytest.raises(ValueError, match="negative"):
        NodeCrash(node=-1, time_ns=0)
    with pytest.raises(ValueError, match="before t=0"):
        NicStall(node=0, start_ns=-1, duration_ns=10)
    with pytest.raises(ValueError, match="not a NodeCrash"):
        FaultPlan(crashes=("node3",))


def test_recovery_config_validation():
    with pytest.raises(ValueError, match="ack_policy"):
        RecoveryConfig(ack_policy="gossip")
    with pytest.raises(ValueError, match="detect_ns"):
        RecoveryConfig(detect_ns=-1)


def test_fault_config_retry_validation():
    with pytest.raises(ValueError, match="op_deadline_ns"):
        FaultConfig(op_deadline_ns=0)
    with pytest.raises(ValueError, match="max_retries"):
        FaultConfig(max_retries=-1)


# ---------------------------------------------------------------------------
# CI fault matrix: {drop, stall, crash} x {locks, fence, pscw}
# ---------------------------------------------------------------------------
def _locks_workload(ctx):
    win = yield from ctx.rma.win_allocate(256)
    for _ in range(3):
        yield from win.lock(0, LockType.SHARED)
        yield from win.unlock(0)
    return "ok"


def _fence_workload(ctx):
    win = yield from ctx.rma.win_allocate(256)
    for _ in range(3):
        yield from win.fence()
    return "ok"


def _pscw_workload(ctx):
    win = yield from ctx.rma.win_allocate(256)
    peer = 1 - (ctx.rank % 2) + 2 * (ctx.rank // 2)
    for _ in range(2):
        yield from win.post([peer])
        yield from win.start([peer])
        yield from win.complete()
        yield from win.wait()
    return "ok"


_WORKLOADS = {"locks": (_locks_workload, 4), "fence": (_fence_workload, 4),
              "pscw": (_pscw_workload, 4)}

_FAULTS = {
    "drop": FaultConfig(plan=FaultPlan(drop_prob=0.05)),
    "stall": FaultConfig(plan=FaultPlan(
        stalls=(NicStall(node=1, start_ns=10_000, duration_ns=40_000),))),
    "crash": FaultConfig(plan=FaultPlan(
        crashes=(NodeCrash(node=3, time_ns=150_000),))),
    # Crash with every packet also delayed: deliveries straddle the
    # crash instant, so detection and revocation race in-flight traffic.
    "crash+delay": FaultConfig(plan=FaultPlan(
        delay_prob=0.3, delay_ns=8_000,
        crashes=(NodeCrash(node=3, time_ns=150_000),))),
    # Crash plus loss: retransmit chains that target the dead node must
    # convert to NodeCrashedError as soon as an attempt lands past the
    # crash instant, instead of burning the whole retry budget and
    # clogging the injection channel (DeadlineError here would mean the
    # early-exit regressed).
    "crash+rexmit": FaultConfig(plan=FaultPlan(
        drop_prob=0.10,
        crashes=(NodeCrash(node=3, time_ns=150_000),))),
}


@pytest.mark.parametrize("fault", sorted(_FAULTS))
@pytest.mark.parametrize("workload", sorted(_WORKLOADS))
def test_fault_matrix_smoke(workload, fault):
    """Every {fault} x {protocol} combination terminates: clean returns
    under recoverable faults, structured errors under crashes.  When
    REPRO_FAULT_STATS is set, appends one JSON line per cell (the CI
    fault-matrix artifact)."""
    program, nranks = _WORKLOADS[workload]
    res = run_spmd(program, nranks, machine=INTER, faults=_FAULTS[fault])
    for r, ret in enumerate(res.returns):
        assert ret == "ok" or isinstance(ret, FaultError), \
            f"{workload}/{fault}: rank {r} returned {ret!r}"
    if fault.startswith("crash"):
        assert res.stats["recovery"]["failures_detected"] == 1

    out = os.environ.get("REPRO_FAULT_STATS")
    if out:
        with open(out, "a") as fh:
            fh.write(json.dumps({
                "workload": workload, "fault": fault,
                "sim_time_ns": res.sim_time_ns,
                "retransmits": res.stats.get("retransmits", 0),
                "faults": res.stats.get("faults", {}),
                "recovery": res.stats.get("recovery", {}),
            }, sort_keys=True) + "\n")


@pytest.mark.parametrize("fault", sorted(_FAULTS))
@pytest.mark.parametrize("workload", sorted(_WORKLOADS))
def test_fault_matrix_checker_cell(workload, fault):
    """The checker-enabled cell of the fault matrix: every combination
    still terminates with the memory-model checker attached, the demo
    protocols stay race-free under faults, and the cell lands in the
    REPRO_FAULT_STATS artifact like the others."""
    from repro.config import CheckConfig

    program, nranks = _WORKLOADS[workload]
    res = run_spmd(program, nranks, machine=INTER, faults=_FAULTS[fault],
                   check=CheckConfig(enabled=True))
    for r, ret in enumerate(res.returns):
        assert ret == "ok" or isinstance(ret, FaultError), \
            f"{workload}/{fault}+check: rank {r} returned {ret!r}"
    ck = res.check
    assert ck is not None and ck.clean, \
        f"{workload}/{fault}+check: {[v.describe() for v in ck.violations]}"

    out = os.environ.get("REPRO_FAULT_STATS")
    if out:
        with open(out, "a") as fh:
            fh.write(json.dumps({
                "workload": workload, "fault": fault, "checker": True,
                "sim_time_ns": res.sim_time_ns,
                "check": res.stats.get("check", {}),
            }, sort_keys=True) + "\n")
