"""Crash-through serving: availability gap, state bit-identity,
post-recovery tail, and the single-writer determinism that makes the
FT workload's final bytes a pure function of the seed."""

import numpy as np
import pytest

from repro.apps.kvstore.ft_kv import (run_kv_crash_to_completion,
                                      run_kv_ft, state_bytes)
from repro.serve.zipf import ServeSpec

SPEC = ServeSpec(nkeys=64, total_requests=600, seed=7, ft_mode=True)
NRANKS = 4


@pytest.fixture(scope="module")
def outcome():
    return run_kv_crash_to_completion(NRANKS, SPEC, crash_rank=1,
                                      crash_frac=0.5, interval=16)


def test_crash_through_recovers_exact_state(outcome):
    assert outcome.match
    assert outcome.crash_rank == 1
    assert outcome.crash_time_ns > 0


def test_availability_gap_reported(outcome):
    """The gap is the served-traffic outage: crash instant to the end
    of the restore span, strictly positive and small relative to the
    run."""
    assert outcome.availability_gap_ns > 0
    assert outcome.availability_gap_ns < outcome.recovered.sim_time_ns


def test_post_recovery_tail_reported(outcome):
    assert outcome.post_recovery_p99_ns > 0
    sec = outcome.report_section()
    for key in ("crash_rank", "crash_time_ns", "availability_gap_ns",
                "post_recovery_p99_ns", "state_match", "ranks_restored"):
        assert key in sec
    assert sec["state_match"] is True
    assert sec["ranks_restored"] >= 1


def test_ft_mode_final_bytes_pure_function_of_seed():
    """Single-writer key remap makes even the fault-free FT run's final
    window bytes bit-deterministic -- the property the crash run is
    diffed against."""
    a = run_kv_ft(NRANKS, SPEC, faults=None)
    b = run_kv_ft(NRANKS, SPEC, faults=None)
    assert state_bytes(a) == state_bytes(b)


def test_crash_rank_requests_resume_after_restore(outcome):
    """The restarted rank re-bases its schedule and finishes serving:
    every client's latency rows from the recovered run are complete and
    positive past the restore point."""
    rows = [r[0] for r in outcome.recovered.returns
            if not isinstance(r, BaseException)]
    assert len(rows) == NRANKS
    lat = np.concatenate(rows)
    done = lat[:, 1] - lat[:, 0]
    assert np.all(done > 0)
    # some requests completed after the outage ended
    end = outcome.crash_time_ns + outcome.availability_gap_ns
    assert np.count_nonzero(lat[:, 1] >= end) > 0


def test_cli_ft_gate(capsys):
    from repro.__main__ import main

    rc = main(["serve", "kvstore", "--ranks", "4", "--requests", "400",
               "--nkeys", "64", "--seed", "3", "--ft", "--crash", "1"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "availability gap" in out and "state MATCH" in out
    # an impossible gap SLO fails the gate
    rc = main(["serve", "kvstore", "--ranks", "4", "--requests", "400",
               "--nkeys", "64", "--seed", "3", "--ft", "--crash", "1",
               "--slo-gap-us", "0.001"])
    assert rc == 1
