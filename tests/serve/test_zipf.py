"""Workload-generator properties: determinism, skew, arrivals, fan-out.

The serving layer's whole determinism story rests on the generator:
for a fixed spec the per-client schedule must be a pure function of
``(seed, client, nclients)`` -- bit-identical across calls, processes
and the benchmark pool -- and its statistics must actually be Zipfian
with the requested op mix.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.zipf import (OP_GET, OP_PUT, OP_UPDATE, ServeSpec,
                              client_schedule, mutator_of, requests_for,
                              zipf_cdf)

SPEC = ServeSpec(nkeys=64, theta=0.99, total_requests=800, seed=11)


def test_schedule_bit_identical_across_calls():
    a = client_schedule(SPEC, 2, 4)
    b = client_schedule(SPEC, 2, 4)
    assert a.dtype == np.int64 and a.shape[1] == 4
    assert np.array_equal(a, b)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), client=st.integers(0, 3),
       theta=st.floats(0.0, 1.2))
def test_schedule_deterministic_property(seed, client, theta):
    spec = ServeSpec(nkeys=32, theta=theta, total_requests=64, seed=seed)
    a = client_schedule(spec, client, 4)
    assert np.array_equal(a, client_schedule(spec, client, 4))
    # arrivals strictly increase (min 1 ns gap), keys/ops/values in range
    assert np.all(np.diff(a[:, 0]) >= 1)
    assert np.all((a[:, 2] >= 0) & (a[:, 2] < spec.nkeys))
    assert set(np.unique(a[:, 1])) <= {OP_GET, OP_PUT, OP_UPDATE}
    assert np.all((a[:, 3] >= 1) & (a[:, 3] < 1 << 40))


def test_clients_draw_distinct_streams():
    a = client_schedule(SPEC, 0, 4)
    b = client_schedule(SPEC, 1, 4)
    assert not np.array_equal(a[:, 2], b[:, 2])


def test_requests_split_covers_total():
    counts = [requests_for(SPEC, c, 3) for c in range(3)]
    assert sum(counts) == SPEC.total_requests
    assert max(counts) - min(counts) <= 1


def test_empirical_skew_matches_zipf_cdf():
    """Key frequencies track the analytic Zipf weights within a loose
    multinomial tolerance (the generator inverts the exact CDF)."""
    spec = ServeSpec(nkeys=32, theta=0.99, total_requests=20000, seed=5)
    keys = np.concatenate([client_schedule(spec, c, 4)[:, 2]
                           for c in range(4)])
    cdf = zipf_cdf(spec.nkeys, spec.theta)
    weights = np.diff(cdf, prepend=0.0)
    freq = np.bincount(keys, minlength=spec.nkeys) / keys.size
    # hot head within 10% relative; aggregate L1 distance small
    assert abs(freq[0] - weights[0]) / weights[0] < 0.10
    assert np.abs(freq - weights).sum() < 0.05
    # and the head really dominates the tail
    assert freq[0] > 5 * freq[-1]


def test_theta_zero_is_uniform():
    spec = ServeSpec(nkeys=16, theta=0.0, total_requests=16000, seed=5)
    keys = np.concatenate([client_schedule(spec, c, 2)[:, 2]
                           for c in range(2)])
    freq = np.bincount(keys, minlength=spec.nkeys) / keys.size
    assert freq.max() / freq.min() < 1.3


def test_op_mix_matches_fractions():
    spec = ServeSpec(nkeys=32, get_frac=0.6, update_frac=0.2,
                     total_requests=20000, seed=9)
    ops = np.concatenate([client_schedule(spec, c, 4)[:, 1]
                          for c in range(4)])
    get = np.count_nonzero(ops == OP_GET) / ops.size
    upd = np.count_nonzero(ops == OP_UPDATE) / ops.size
    assert abs(get - 0.6) < 0.03
    assert abs(upd - 0.2) < 0.03


def test_ft_mode_remaps_mutations_to_single_writer():
    spec = ServeSpec(nkeys=64, total_requests=2000, seed=3, ft_mode=True)
    for client in range(4):
        sched = client_schedule(spec, client, 4)
        mut = sched[np.isin(sched[:, 1], (OP_PUT, OP_UPDATE))]
        assert mut.size, "spec must generate some mutations"
        for key in np.unique(mut[:, 2]):
            assert mutator_of(int(key), 4) == client
    # GET keys keep the Zipf draw (reads may target any key)
    sched = client_schedule(spec, 0, 4)
    gets = sched[sched[:, 1] == OP_GET]
    assert len(np.unique(gets[:, 2])) > 8


def test_spec_validation():
    with pytest.raises(ValueError):
        ServeSpec(nkeys=0)
    with pytest.raises(ValueError):
        ServeSpec(get_frac=0.9, update_frac=0.2)
    with pytest.raises(ValueError):
        ServeSpec(rate_hz=0.0)


def test_schedules_bit_identical_under_pool_fanout(monkeypatch):
    """Satellite gate: the benchmark pool fan-out returns the same bytes
    as the serial loop (schedules are pure functions of their args, and
    run_points merges in input order)."""
    from repro.bench.pool import BenchPoint, run_points

    monkeypatch.setenv("REPRO_BENCH_CACHE", "0")
    points = [BenchPoint(client_schedule, (SPEC, c, 4)) for c in range(4)]
    serial = [client_schedule(SPEC, c, 4) for c in range(4)]
    pooled = run_points(points, workers=2)
    for s, p in zip(serial, pooled):
        assert np.array_equal(s, p)
