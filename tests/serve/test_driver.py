"""Serving drivers end to end: bit-identity, checker cleanliness,
backend model agreement, SLO exactness, and the CLI gates."""

import numpy as np
import pytest

from repro.config import MachineConfig, ObsConfig, SimConfig
from repro.runtime.job import run_spmd
from repro.serve.driver import (all_latencies, expected_contents,
                                merged_contents, run_kv_serve)
from repro.serve.slo import (build_report, exact_percentiles, render_report,
                             report_digest)
from repro.serve.zipf import OP_GET, ServeSpec

SPEC = ServeSpec(nkeys=64, total_requests=600, seed=7)
NRANKS = 4


@pytest.fixture(scope="module")
def rma_result():
    return run_kv_serve(NRANKS, SPEC)


def test_report_bit_identical_across_runs(rma_result):
    """Acceptance property: the same spec yields a byte-identical
    latency report (and hence digest) on every run."""
    again = run_kv_serve(NRANKS, SPEC)
    a = build_report(rma_result, SPEC, NRANKS)
    b = build_report(again, SPEC, NRANKS)
    assert a == b
    assert report_digest(a) == report_digest(b)


def test_latency_is_open_loop(rma_result):
    """Latencies are completion minus *scheduled* arrival: every request
    of the spec is measured, none are coordinated-omitted."""
    lats = all_latencies(rma_result)
    assert lats.size == SPEC.total_requests
    assert np.all(lats > 0)


def test_report_sections(rma_result):
    rep = build_report(rma_result, SPEC, NRANKS)
    assert rep["ops"]["get"] + rep["ops"]["put"] + rep["ops"]["update"] \
        == SPEC.total_requests
    assert rep["latency_ns"]["p50"] <= rep["latency_ns"]["p99"] \
        <= rep["latency_ns"]["p99_9"] <= rep["latency_ns"]["max"]
    # per-rank hotspot counters cover every remote-op target
    hot = rep["hotspots"]
    assert sum(hot["owner_requests"].values()) > 0
    assert hot["mcs_acquires"] > 0
    text = render_report(rep)
    assert "p99" in text and "hotspots" in text


def test_pow2_histogram_brackets_exact_p99(rma_result):
    """The obs histogram (cheap view) and the exact percentiles (SLO
    source of truth) must agree: the exact p99 falls in a populated
    power-of-two bucket whose bounds bracket it."""
    rep = build_report(rma_result, SPEC, NRANKS)
    p99 = rep["latency_ns"]["p99"]
    hist = rma_result.obs.metrics.merged_histogram("kv.latency_ns")
    snap = hist.snapshot()
    assert snap["count"] == SPEC.total_requests
    assert p99 <= snap["max"]


def test_checker_clean():
    """The CAS-update/MCS serving path carries enough happens-before
    (lock hb edges + flush ordering + note_local annotation) for a
    clean bill from the race checker."""
    res = run_kv_serve(NRANKS, SPEC, check=True)
    assert res.check.clean, \
        [v.describe() for v in res.check.violations]
    assert res.check.accesses_seen > 0


def test_rma_matches_replay_model(rma_result):
    keys, determined = expected_contents(SPEC, NRANKS)
    final = merged_contents(rma_result)
    assert set(final) == keys
    for k, v in determined.items():
        assert final[k] == v


def test_mpi1_comparator_matches_replay_model():
    from repro.apps.kvstore.mpi1_kv import mpi1_kv_program

    res = run_spmd(mpi1_kv_program, NRANKS, SPEC,
                   machine=MachineConfig(ranks_per_node=1),
                   sim=SimConfig(seed=SPEC.seed),
                   obs=ObsConfig(enabled=True))
    keys, determined = expected_contents(SPEC, NRANKS)
    final = merged_contents(res)
    assert set(final) == keys
    for k, v in determined.items():
        assert final[k] == v
    # same op counts as the RMA backend (same schedules)
    rep = build_report(res, SPEC, NRANKS, variant="mpi1")
    assert rep["ops"]["get"] \
        == int(sum(np.count_nonzero(r[0][:, 2] == OP_GET)
                   for r in res.returns))


def test_exact_percentiles_nearest_rank():
    samples = np.arange(1, 101)          # 1..100
    pct = exact_percentiles(samples)
    assert pct == {"p50": 50, "p99": 99, "p99_9": 100}
    assert exact_percentiles([])["p99"] == 0
    assert exact_percentiles([42]) == {"p50": 42, "p99": 42, "p99_9": 42}


def test_cli_serve_and_slo_gate(capsys):
    from repro.__main__ import main

    rc = main(["serve", "kvstore", "--ranks", "4", "--requests", "400",
               "--nkeys", "64", "--seed", "3"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "p99" in out and "report digest" in out
    # impossible SLO -> exit 1
    rc = main(["serve", "kvstore", "--ranks", "4", "--requests", "400",
               "--nkeys", "64", "--seed", "3", "--slo-p99-us", "0.001"])
    assert rc == 1
    assert "SLO FAILED" in capsys.readouterr().out


def test_cli_writes_identical_json(tmp_path):
    from repro.__main__ import main

    pa, pb = tmp_path / "a.json", tmp_path / "b.json"
    for p in (pa, pb):
        assert main(["serve", "kvstore", "--ranks", "4", "--requests",
                     "300", "--nkeys", "32", "--seed", "5",
                     "--out", str(p)]) == 0
    assert pa.read_bytes() == pb.read_bytes()
