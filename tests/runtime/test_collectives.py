"""Deeper collective-algorithm coverage, incl. property-based checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import run_spmd
from repro.config import MachineConfig
from repro.errors import Mpi1Error

INTER = MachineConfig(ranks_per_node=1)


@settings(max_examples=8, deadline=None)
@given(p=st.integers(2, 9), root=st.integers(0, 8))
def test_bcast_any_root(p, root):
    root = root % p

    def program(ctx):
        val = ("payload", root) if ctx.rank == root else None
        return (yield from ctx.coll.bcast(val, root=root))

    res = run_spmd(program, p, machine=INTER)
    assert res.returns == [("payload", root)] * p


@settings(max_examples=8, deadline=None)
@given(p=st.integers(1, 10),
       vals=st.lists(st.integers(-1000, 1000), min_size=10, max_size=10))
def test_allreduce_arbitrary_values(p, vals):
    def program(ctx):
        return (yield from ctx.coll.allreduce(vals[ctx.rank]))

    res = run_spmd(program, p, machine=INTER)
    assert res.returns == [sum(vals[:p])] * p


def test_allreduce_custom_op_max():
    def program(ctx):
        return (yield from ctx.coll.allreduce((ctx.rank * 7) % 5, op=max))

    res = run_spmd(program, 6, machine=INTER)
    expected = max((r * 7) % 5 for r in range(6))
    assert res.returns == [expected] * 6


def test_allreduce_numpy_vectors():
    def program(ctx):
        vec = np.full(4, ctx.rank + 1, dtype=np.int64)
        return (yield from ctx.coll.allreduce(vec))

    res = run_spmd(program, 4, machine=INTER)
    assert res.returns[0].tolist() == [10, 10, 10, 10]


def test_allgather_single_rank():
    def program(ctx):
        return (yield from ctx.coll.allgather("only"))

    assert run_spmd(program, 1, machine=INTER).returns == [["only"]]


def test_barrier_actually_synchronizes():
    def program(ctx):
        yield from ctx.compute(ctx.rank * 10_000)  # skewed arrival
        yield from ctx.coll.barrier()
        return ctx.now

    res = run_spmd(program, 4, machine=INTER)
    slowest_arrival = 3 * 10_000
    assert all(t >= slowest_arrival for t in res.returns)


def test_barrier_scales_logarithmically():
    def timed(p):
        def program(ctx):
            yield from ctx.coll.barrier()
            t0 = ctx.now
            yield from ctx.coll.barrier()
            return ctx.now - t0

        return max(run_spmd(program, p, machine=INTER).returns)

    t2, t16, t64 = timed(2), timed(16), timed(64)
    assert t16 <= 5 * t2    # log2(16)=4 rounds
    assert t64 <= 8 * t2    # log2(64)=6 rounds, not 32x


def test_reduce_scatter_requires_full_vector():
    def program(ctx):
        with pytest.raises(Mpi1Error):
            yield from ctx.coll.reduce_scatter_block(np.zeros(3))
        yield from ctx.coll.barrier()

    run_spmd(program, 4, machine=INTER)


def test_reduce_scatter_nonpow2_fallback():
    p = 6

    def program(ctx):
        vec = np.arange(p, dtype=np.int64) * (ctx.rank + 1)
        got = yield from ctx.coll.reduce_scatter_block(vec)
        return int(got)

    res = run_spmd(program, p, machine=INTER)
    scale = sum(r + 1 for r in range(p))
    assert res.returns == [i * scale for i in range(p)]


def test_alltoall_wrong_length():
    def program(ctx):
        with pytest.raises(Mpi1Error):
            yield from ctx.coll.alltoall([1, 2])
        yield from ctx.coll.barrier()

    run_spmd(program, 3, machine=INTER)


def test_multiple_ibarriers_sequence():
    def program(ctx):
        for _ in range(3):
            ib = ctx.coll.ibarrier()
            yield from ib.wait()
        return True

    assert all(run_spmd(program, 4, machine=INTER).returns)


def test_ibarrier_test_transitions():
    def program(ctx):
        ib = ctx.coll.ibarrier()
        if ctx.rank == 0:
            assert not ib.test()  # cannot have completed instantly
        yield from ib.wait()
        assert ib.test()
        return True

    assert all(run_spmd(program, 4, machine=INTER).returns)


def test_collectives_interleave_with_pt2pt():
    """User traffic on the 'user' channel must not disturb collectives."""
    def program(ctx):
        if ctx.rank == 0:
            yield from ctx.mpi.send(1, "x", tag=42)
        total = yield from ctx.coll.allreduce(1)
        if ctx.rank == 1:
            got = yield from ctx.mpi.recv(0, tag=42)
            assert got == "x"
        yield from ctx.coll.barrier()
        return total

    res = run_spmd(program, 4, machine=INTER)
    assert res.returns == [4] * 4
