"""End-to-end smoke tests for the runtime stack (pre-RMA layers)."""

import numpy as np
import pytest

from repro import run_spmd
from repro.config import MachineConfig


def test_hello_world_returns():
    def program(ctx):
        yield from ctx.compute(10)
        return ctx.rank * 2

    res = run_spmd(program, 4)
    assert res.returns == [0, 2, 4, 6]
    assert res.sim_time_ns >= 10


def test_pingpong_inter_node():
    cfg = MachineConfig(ranks_per_node=1)

    def program(ctx):
        data = np.arange(8, dtype=np.uint8)
        if ctx.rank == 0:
            yield from ctx.mpi.send(1, data)
            got = yield from ctx.mpi.recv(1)
            return got.tolist()
        got = yield from ctx.mpi.recv(0)
        yield from ctx.mpi.send(0, got * 2)
        return None

    res = run_spmd(program, 2, machine=cfg)
    assert res.returns[0] == [0, 2, 4, 6, 8, 10, 12, 14]
    # half round trip should be ~1.3 us
    half = res.sim_time_ns / 2
    assert 900 < half < 2000, half


def test_rendezvous_large_message():
    cfg = MachineConfig(ranks_per_node=1)
    n = 64 * 1024

    def program(ctx):
        if ctx.rank == 0:
            data = np.full(n, 7, dtype=np.uint8)
            yield from ctx.mpi.send(1, data)
            return None
        got = yield from ctx.mpi.recv(0)
        return int(got.sum())

    res = run_spmd(program, 2, machine=cfg)
    assert res.returns[1] == 7 * n


@pytest.mark.parametrize("p", [2, 3, 4, 7, 8, 16])
def test_barrier_completes(p):
    def program(ctx):
        yield from ctx.coll.barrier()
        return ctx.now

    res = run_spmd(program, p)
    assert len(res.returns) == p


@pytest.mark.parametrize("p", [1, 2, 5, 8])
def test_bcast(p):
    def program(ctx):
        val = f"hello-{ctx.rank}" if ctx.rank == 0 else None
        got = yield from ctx.coll.bcast(val, root=0)
        return got

    res = run_spmd(program, p)
    assert res.returns == ["hello-0"] * p


@pytest.mark.parametrize("p", [2, 3, 4, 6, 8, 16])
def test_allreduce_sum(p):
    def program(ctx):
        got = yield from ctx.coll.allreduce(ctx.rank + 1)
        return got

    res = run_spmd(program, p)
    expected = p * (p + 1) // 2
    assert res.returns == [expected] * p


@pytest.mark.parametrize("p", [2, 4, 5, 8])
def test_allgather(p):
    def program(ctx):
        got = yield from ctx.coll.allgather(ctx.rank ** 2)
        return got

    res = run_spmd(program, p)
    for r in res.returns:
        assert r == [i ** 2 for i in range(p)]


@pytest.mark.parametrize("p", [2, 4, 8])
def test_reduce_scatter_block(p):
    def program(ctx):
        vec = np.arange(p, dtype=np.int64) + ctx.rank
        got = yield from ctx.coll.reduce_scatter_block(vec)
        return int(got)

    res = run_spmd(program, p)
    base = p * (p - 1) // 2
    assert res.returns == [base + i * p for i in range(p)]


@pytest.mark.parametrize("p", [2, 3, 4, 8])
def test_alltoall(p):
    def program(ctx):
        out = [ctx.rank * 100 + d for d in range(p)]
        got = yield from ctx.coll.alltoall(out)
        return got

    res = run_spmd(program, p)
    for r, got in enumerate(res.returns):
        assert got == [s * 100 + r for s in range(p)]


def test_ibarrier_nonblocking():
    def program(ctx):
        ib = ctx.coll.ibarrier()
        # do some local work while the barrier progresses
        yield from ctx.compute(50)
        yield from ib.wait()
        return True

    res = run_spmd(program, 8)
    assert all(res.returns)


def test_dmapp_put_get_roundtrip():
    cfg = MachineConfig(ranks_per_node=1)

    def program(ctx):
        seg = ctx.space.alloc(64, label="buf")
        desc = ctx.reg.register(seg)
        descs = yield from ctx.coll.allgather(desc)
        yield from ctx.coll.barrier()
        if ctx.rank == 0:
            data = np.arange(16, dtype=np.uint8) + 100
            h = yield from ctx.dmapp.put_nbi(descs[1], 0, data)
            yield from ctx.dmapp.gsync()
        yield from ctx.coll.barrier()
        if ctx.rank == 1:
            return seg.read(0, 16).tolist()
        got = yield from ctx.dmapp.get_b(descs[1], 0, 16)
        return got.tolist()

    res = run_spmd(program, 2, machine=cfg)
    expected = list(range(100, 116))
    assert res.returns[0] == expected
    assert res.returns[1] == expected


def test_dmapp_amo_fadd_and_cas():
    from repro.mem.atomic import AtomicArray

    cfg = MachineConfig(ranks_per_node=1)

    def program(ctx, cells):
        if ctx.rank == 0:
            old = yield from ctx.dmapp.amo_b(1, cells, 0, "add", 5)
            assert old == 0
            old = yield from ctx.dmapp.amo_b(1, cells, 0, "cas", 5, 99)
            assert old == 5
            return cells.load(0)
        yield from ctx.compute(1)
        return None

    from repro.runtime.job import Job, run_on_world

    job = Job(nranks=2, machine=cfg)
    world = job.build_world()
    cells = AtomicArray(world.env, 4, name="test")
    res = run_on_world(world, program, cells)
    assert res.returns[0] == 99


def test_xpmem_store_load_same_node():
    def program(ctx):
        seg = ctx.space.alloc(32)
        token = ctx.xpmem.expose(seg)
        tokens = yield from ctx.coll.allgather(token)
        yield from ctx.coll.barrier()
        if ctx.rank == 0:
            yield from ctx.xpmem.store(ctx.xpmem.attach(tokens[1]), 0,
                                       np.full(8, 42, np.uint8))
        yield from ctx.coll.barrier()
        return int(seg.read(0, 1)[0])

    res = run_spmd(program, 2)  # default 32 ranks/node: same node
    assert res.returns[1] == 42


def test_determinism_same_seed():
    def program(ctx):
        for i in range(3):
            yield from ctx.coll.barrier()
        got = yield from ctx.coll.allreduce(ctx.rank)
        return (got, ctx.now)

    r1 = run_spmd(program, 8)
    r2 = run_spmd(program, 8)
    assert r1.returns == r2.returns
    assert r1.sim_time_ns == r2.sim_time_ns
    assert r1.events_processed == r2.events_processed
