"""UPC-like and CAF-like comparator layers + the Cray MPI-2.2 baseline."""

import numpy as np
import pytest

from repro import run_spmd
from repro.config import MachineConfig

INTER = MachineConfig(ranks_per_node=1)
INTRA = MachineConfig(ranks_per_node=64)


def test_upc_memput_memget():
    def program(ctx):
        arr = yield from ctx.upc.all_alloc(256)
        yield from ctx.upc.barrier()
        if ctx.rank == 0:
            yield from ctx.upc.memput(arr, 1, 0, np.full(16, 5, np.uint8))
            yield from ctx.upc.fence()
        yield from ctx.upc.barrier()
        got = yield from ctx.upc.memget(arr, 1, 0, 16)
        return got.tolist()

    res = run_spmd(program, 2, machine=INTER)
    assert res.returns[0] == [5] * 16
    assert res.returns[1] == [5] * 16


def test_upc_atomics_unique_tickets():
    p = 5

    def program(ctx):
        arr = yield from ctx.upc.all_alloc(64)
        yield from ctx.upc.barrier()
        old = yield from ctx.upc.aadd(arr, 0, 0, 1)
        yield from ctx.upc.barrier()
        return int(old)

    res = run_spmd(program, p, machine=INTER)
    assert sorted(res.returns) == list(range(p))


def test_upc_cas_single_winner():
    def program(ctx):
        arr = yield from ctx.upc.all_alloc(64)
        yield from ctx.upc.barrier()
        old = yield from ctx.upc.cas(arr, 0, 0, 0, ctx.rank + 1)
        yield from ctx.upc.barrier()
        return int(old)

    res = run_spmd(program, 4, machine=INTER)
    assert [o for o in res.returns if o == 0] == [0]


def test_upc_put_slower_than_fompi_small():
    """Figure 4a: foMPI >50% lower latency than UPC at small sizes."""
    def upc_prog(ctx):
        arr = yield from ctx.upc.all_alloc(64)
        yield from ctx.upc.barrier()
        t0 = ctx.now
        if ctx.rank == 0:
            yield from ctx.upc.memput(arr, 1, 0, np.zeros(8, np.uint8))
            yield from ctx.upc.fence()
        dt = ctx.now - t0
        yield from ctx.upc.barrier()
        return dt

    def fompi_prog(ctx):
        win = yield from ctx.rma.win_allocate(64)
        yield from win.lock_all()
        t0 = ctx.now
        if ctx.rank == 0:
            yield from win.put(np.zeros(8, np.uint8), 1, 0)
            yield from win.flush(1)
        dt = ctx.now - t0
        yield from win.unlock_all()
        yield from ctx.coll.barrier()
        return dt

    t_upc = run_spmd(upc_prog, 2, machine=INTER).returns[0]
    t_fompi = run_spmd(fompi_prog, 2, machine=INTER).returns[0]
    assert t_fompi < 0.66 * t_upc, (t_fompi, t_upc)
    assert 900 <= t_fompi <= 1300       # ~1.0 us
    assert 1700 <= t_upc <= 2700        # ~2 us


def test_caf_assign_read():
    def program(ctx):
        co = yield from ctx.caf.coarray_alloc(128)
        yield from ctx.caf.sync_all()
        if ctx.rank == 0:
            yield from ctx.caf.assign(co, 1, 0, np.full(8, 3.5, np.float64))
            yield from ctx.caf.sync_memory()
        yield from ctx.caf.sync_all()
        return co.local_view(np.float64)[:8].tolist()

    res = run_spmd(program, 2, machine=INTER)
    assert res.returns[1] == [3.5] * 8


def test_caf_put_slowest_pgas():
    """CAF sits above UPC in Figure 4a."""
    def caf_prog(ctx):
        co = yield from ctx.caf.coarray_alloc(64)
        yield from ctx.caf.sync_all()
        t0 = ctx.now
        if ctx.rank == 0:
            yield from ctx.caf.assign(co, 1, 0, np.zeros(8, np.uint8))
            yield from ctx.caf.sync_memory()
        dt = ctx.now - t0
        yield from ctx.caf.sync_all()
        return dt

    t_caf = run_spmd(caf_prog, 2, machine=INTER).returns[0]
    assert 2400 <= t_caf <= 3800, t_caf


def test_cray22_put_has_protocol_change():
    """Figure 4a: ~10 us small-put latency, dropping after the DMAPP
    protocol change threshold."""
    from repro.rma.cray22 import win_allocate_cray22

    def timed(nbytes):
        def program(ctx):
            win = yield from win_allocate_cray22(ctx, 1 << 20)
            yield from ctx.coll.barrier()
            t0 = ctx.now
            if ctx.rank == 0:
                yield from win.put(np.zeros(nbytes, np.uint8), 1, 0)
                yield from win.flush(1)
            dt = ctx.now - t0
            yield from ctx.coll.barrier()
            return dt

        return run_spmd(program, 2, machine=INTER).returns[0]

    t_small = timed(8)
    t_2k = timed(2048)
    t_8k = timed(8192)
    assert 8000 <= t_small <= 13000, t_small       # ~10 us software path
    assert t_2k > t_small                          # software byte cost
    assert t_8k < t_2k                             # protocol change kicked in


def test_cray22_pscw_grows_with_p():
    """Figure 6c: Cray PSCW overhead grows with process count."""
    from repro.rma.cray22 import win_allocate_cray22

    def timed(p):
        def program(ctx):
            win = yield from win_allocate_cray22(ctx, 4096)
            yield from ctx.coll.barrier()
            left = (ctx.rank - 1) % ctx.nranks
            right = (ctx.rank + 1) % ctx.nranks
            t0 = ctx.now
            yield from win.post([left, right])
            yield from win.start([left, right])
            yield from win.complete()
            yield from win.wait()
            return ctx.now - t0

        return max(run_spmd(program, p, machine=INTER).returns)

    assert timed(16) > timed(4)


def test_upc_memget_nb_and_sync():
    import numpy as np

    def program(ctx):
        arr = yield from ctx.upc.all_alloc(64)
        arr.local_view(np.uint8)[:8] = ctx.rank + 1
        yield from ctx.upc.barrier()
        out = np.zeros(8, np.uint8)
        h = yield from ctx.upc.memget_nb(arr, (ctx.rank + 1) % ctx.nranks,
                                         0, 8, out)
        yield from ctx.upc.sync_nb(h)
        yield from ctx.upc.barrier()
        return out.tolist()

    res = run_spmd(program, 3, machine=INTER)
    assert res.returns[0] == [2] * 8
    assert res.returns[2] == [1] * 8


def test_upc_aadd_nb_is_fire_and_forget():
    def program(ctx):
        arr = yield from ctx.upc.all_alloc(64)
        yield from ctx.upc.barrier()
        t0 = ctx.now
        yield from ctx.upc.aadd_nb(arr, (ctx.rank + 1) % ctx.nranks, 0, 1)
        issue = ctx.now - t0
        yield from ctx.upc.fence()
        yield from ctx.upc.barrier()
        import numpy as np
        return issue, int(arr.local_view(np.int64)[0])

    res = run_spmd(program, 4, machine=INTER)
    for issue, total in res.returns:
        assert issue < 1500          # no round trip at issue
        assert total == 1            # every AMO landed


def test_caf_assign_nb_cheaper_than_assign():
    import numpy as np

    def program(ctx):
        co = yield from ctx.caf.coarray_alloc(64)
        yield from ctx.caf.sync_all()
        out = None
        if ctx.rank == 0:
            data = np.zeros(8, np.uint8)
            t0 = ctx.now
            yield from ctx.caf.assign(co, 1, 0, data)
            t_blocking = ctx.now - t0
            t0 = ctx.now
            yield from ctx.caf.assign_nb(co, 1, 0, data)
            t_nb = ctx.now - t0
            out = (t_blocking, t_nb)
        yield from ctx.caf.sync_all()
        return out

    t_blocking, t_nb = run_spmd(program, 2, machine=INTER).returns[0]
    assert t_nb < t_blocking


def test_upc_affinity_check():
    from repro.errors import RmaError

    def program(ctx):
        arr = yield from ctx.upc.all_alloc(64)
        ctx.upc.check_affinity(arr, 10)
        with pytest.raises(RmaError):
            ctx.upc.check_affinity(arr, 64)
        yield from ctx.upc.barrier()

    run_spmd(program, 2, machine=INTER)
