"""Extension features: optimized dynamic windows + MCS queue locks."""

import numpy as np
import pytest

from repro import run_spmd
from repro.config import MachineConfig
from repro.errors import LockError
from repro.rma.mcs import McsLock
from repro.runtime.job import Job, run_on_world

INTER = MachineConfig(ranks_per_node=1)


# ---------------------------------------------------------------------------
# optimized dynamic windows
# ---------------------------------------------------------------------------
def test_optimized_dynamic_basic_put():
    def program(ctx):
        win = yield from ctx.rma.win_create_dynamic(optimized=True)
        seg = ctx.space.alloc(128)
        yield from win.attach(seg)
        vaddrs = yield from ctx.coll.allgather(seg.vaddr)
        yield from win.lock_all()
        if ctx.rank == 0:
            yield from win.put(np.full(8, 9, np.uint8), 1, vaddrs[1])
            yield from win.flush(1)
        yield from win.unlock_all()
        yield from ctx.coll.barrier()
        return int(seg.read(0, 1)[0])

    res = run_spmd(program, 2, machine=INTER)
    assert res.returns[1] == 9


def test_optimized_variant_has_lower_access_latency():
    """The paper: the optimized variant 'enables better latency for
    communication functions' -- cache hits skip the remote id read."""
    def timed(optimized):
        def program(ctx):
            win = yield from ctx.rma.win_create_dynamic(optimized=optimized)
            seg = ctx.space.alloc(128)
            yield from win.attach(seg)
            vaddrs = yield from ctx.coll.allgather(seg.vaddr)
            yield from win.lock_all()
            dt = None
            if ctx.rank == 0:
                # warm the cache, then time steady-state accesses
                yield from win.put(np.zeros(8, np.uint8), 1, vaddrs[1])
                yield from win.flush(1)
                t0 = ctx.now
                for _ in range(10):
                    yield from win.put(np.zeros(8, np.uint8), 1, vaddrs[1])
                    yield from win.flush(1)
                dt = (ctx.now - t0) / 10
            yield from win.unlock_all()
            yield from ctx.coll.barrier()
            return dt

        return run_spmd(program, 2, machine=INTER).returns[0]

    base = timed(False)
    opt = timed(True)
    # base pays a blocking remote id read (~2.4 us) per access
    assert opt < base - 1500, (opt, base)


def test_optimized_detach_notifies_cachers():
    def program(ctx):
        win = yield from ctx.rma.win_create_dynamic(optimized=True)
        seg = ctx.space.alloc(128)
        desc = yield from win.attach(seg)
        vaddrs = yield from ctx.coll.allgather(seg.vaddr)
        yield from win.lock_all()
        if ctx.rank == 0:
            yield from win.put(np.full(8, 1, np.uint8), 1, vaddrs[1])
            yield from win.flush(1)
        yield from win.unlock_all()
        yield from ctx.coll.barrier()
        stats = None
        if ctx.rank == 1:
            yield from win.detach(desc)
            stats = win.dyn.notifications_sent
        yield from ctx.coll.barrier()
        yield from ctx.compute(10_000)  # let the invalidation land
        if ctx.rank == 0:
            win.dyn._drain_invalidations()
            return (win.dyn.invalidations_seen, 1 in win.dyn.cache)
        return stats

    res = run_spmd(program, 2, machine=INTER)
    assert res.returns[1] == 1          # one cacher notified
    seen, still_cached = res.returns[0]
    assert seen == 1 and not still_cached


def test_optimized_variant_costs_more_memory():
    from repro.sim.trace import OpCounters

    def program(ctx, optimized):
        win = yield from ctx.rma.win_create_dynamic(optimized=optimized)
        return ctx.world.counters.control_memory[ctx.rank]

    base = run_spmd(program, 2, False, machine=INTER).returns[0]
    opt = run_spmd(program, 2, True, machine=INTER).returns[0]
    assert opt > base  # "a small memory overhead"


# ---------------------------------------------------------------------------
# MCS lock
# ---------------------------------------------------------------------------
def test_mcs_mutual_exclusion_and_fairness():
    p = 6

    def program(ctx, log):
        win = yield from ctx.rma.win_allocate(64)
        lock = McsLock(win)
        yield from ctx.coll.barrier()
        # stagger arrivals far beyond network skew so enqueue order is
        # deterministic (MCS is FIFO in tail-swap order)
        yield from ctx.compute(ctx.rank * 5_000)
        yield from lock.acquire()
        log.append(("acq", ctx.rank, ctx.now))
        yield from ctx.compute(2_000)
        log.append(("rel", ctx.rank, ctx.now))
        yield from lock.release()
        yield from ctx.coll.barrier()

    log = []
    run_spmd(program, p, log, machine=INTER)
    # strict alternation acq/rel, no overlap
    kinds = [k for k, *_ in log]
    assert kinds == ["acq", "rel"] * p
    # FIFO fairness: grant order == staggered arrival order
    grants = [r for k, r, _t in log if k == "acq"]
    assert grants == sorted(grants)


def test_mcs_critical_sections_do_not_overlap():
    p = 4

    def program(ctx, spans):
        win = yield from ctx.rma.win_allocate(64)
        lock = McsLock(win)
        yield from ctx.coll.barrier()
        for _ in range(3):
            yield from lock.acquire()
            start = ctx.now
            yield from ctx.compute(500)
            spans.append((start, ctx.now))
            yield from lock.release()
        yield from ctx.coll.barrier()

    spans = []
    run_spmd(program, p, spans, machine=INTER)
    spans.sort()
    for (s1, e1), (s2, _e2) in zip(spans, spans[1:]):
        assert e1 <= s2  # mutual exclusion


def test_mcs_bounded_remote_ops_under_contention():
    """The MCS property: remote operations per acquire/release are O(1)
    even when every rank contends (vs the back-off lock's retries)."""
    p = 8

    def program(ctx, ops):
        win = yield from ctx.rma.win_allocate(64)
        lock = McsLock(win)
        yield from ctx.coll.barrier()
        yield from lock.acquire()
        yield from ctx.compute(3_000)  # long critical section
        yield from lock.release()
        ops[ctx.rank] = lock.remote_ops
        yield from ctx.coll.barrier()

    ops = {}
    run_spmd(program, p, ops, machine=INTER)
    assert max(ops.values()) <= 4  # swap + publish + (cas|handoff)


def test_mcs_errors():
    def program(ctx):
        win = yield from ctx.rma.win_allocate(64)
        lock = McsLock(win)
        with pytest.raises(LockError):
            yield from lock.release()
        yield from lock.acquire()
        with pytest.raises(LockError):
            yield from lock.acquire()
        yield from lock.release()
        yield from ctx.coll.barrier()

    run_spmd(program, 1, machine=INTER)
