"""Cray MPI-2.2 baseline coverage beyond the comparative tests."""

import numpy as np
import pytest

from repro import run_spmd
from repro.config import MachineConfig
from repro.errors import EpochError
from repro.rma.cray22 import Cray22Params, win_allocate_cray22

INTER = MachineConfig(ranks_per_node=1)


def test_put_get_roundtrip():
    def prog(ctx):
        win = yield from win_allocate_cray22(ctx, 1024)
        yield from ctx.coll.barrier()
        out = None
        if ctx.rank == 0:
            yield from win.put(np.full(16, 5, np.uint8), 1, 0)
            yield from win.flush(1)
            buf = np.zeros(16, np.uint8)
            yield from win.get(buf, 1, 0)
            out = buf.tolist()
        yield from ctx.coll.barrier()
        return out

    res = run_spmd(prog, 2, machine=INTER)
    assert res.returns[0] == [5] * 16


def test_fence_makes_puts_visible():
    def program(ctx):
        win = yield from win_allocate_cray22(ctx, 256)
        yield from win.fence()
        if ctx.rank == 0:
            yield from win.put(np.full(8, 3, np.uint8), 1, 0)
        yield from win.fence()
        return int(win.seg.read(0, 1)[0])

    res = run_spmd(program, 2, machine=INTER)
    assert res.returns[1] == 3


def test_accumulate_sums():
    def program(ctx):
        win = yield from win_allocate_cray22(ctx, 256)
        win.seg.typed(np.int64)[:] = 0
        yield from win.fence()
        yield from win.accumulate(np.array([ctx.rank + 1], np.int64), 0, 0)
        yield from win.fence()
        return int(win.seg.typed(np.int64)[0])

    res = run_spmd(program, 3, machine=INTER)
    assert res.returns[0] == 6


def test_lock_epoch_guard():
    def program(ctx):
        win = yield from win_allocate_cray22(ctx, 64)
        yield from win.lock(1)
        with pytest.raises(EpochError):
            yield from win.lock(1)
        yield from win.unlock(1)
        yield from ctx.coll.barrier()

    run_spmd(program, 2, machine=INTER)


def test_custom_params():
    p = Cray22Params(sw_put_remote=20000.0)

    def program(ctx):
        win = yield from win_allocate_cray22(ctx, 64, p)
        yield from ctx.coll.barrier()
        dt = None
        if ctx.rank == 0:
            t0 = ctx.now
            yield from win.put(np.zeros(8, np.uint8), 1, 0)
            yield from win.flush(1)
            dt = ctx.now - t0
        yield from ctx.coll.barrier()
        return dt

    res = run_spmd(program, 2, machine=INTER)
    assert res.returns[0] > 20000
