"""Accumulates, fetch-and-op, CAS: fast path and software fallback."""

import numpy as np
import pytest

from repro import run_spmd
from repro.config import MachineConfig
from repro.rma.enums import Op

INTER = MachineConfig(ranks_per_node=1)
INTRA = MachineConfig(ranks_per_node=64)


@pytest.mark.parametrize("cfg", [INTER, INTRA], ids=["inter", "intra"])
def test_accumulate_sum_hw_path(cfg):
    p = 4

    def program(ctx):
        win = yield from ctx.rma.win_allocate(256)
        yield from win.fence()
        vals = np.full(4, ctx.rank + 1, dtype=np.int64)
        yield from win.accumulate(vals, 0, 0, Op.SUM)
        yield from win.fence()
        return win.local_view(np.int64)[:4].tolist()

    res = run_spmd(program, p, machine=cfg)
    total = sum(r + 1 for r in range(p))
    assert res.returns[0] == [total] * 4


def test_accumulate_band_bor_bxor():
    def program(ctx):
        win = yield from ctx.rma.win_allocate(256)
        win.local_view(np.int64)[:3] = [0b1111, 0b0000, 0b1010]
        yield from win.fence()
        if ctx.rank == 1:
            yield from win.accumulate(np.array([0b1100], np.int64), 0, 0, Op.BAND)
            yield from win.accumulate(np.array([0b0011], np.int64), 0, 1, Op.BOR)
            yield from win.accumulate(np.array([0b0110], np.int64), 0, 2, Op.BXOR)
        yield from win.fence()
        return win.local_view(np.int64)[:3].tolist()

    # disp_unit=1 -> displacements are bytes; use element stride of 8
    def program8(ctx):
        win = yield from ctx.rma.win_allocate(256, disp_unit=8)
        win.local_view(np.int64)[:3] = [0b1111, 0b0000, 0b1010]
        yield from win.fence()
        if ctx.rank == 1:
            yield from win.accumulate(np.array([0b1100], np.int64), 0, 0, Op.BAND)
            yield from win.accumulate(np.array([0b0011], np.int64), 0, 1, Op.BOR)
            yield from win.accumulate(np.array([0b0110], np.int64), 0, 2, Op.BXOR)
        yield from win.fence()
        return win.local_view(np.int64)[:3].tolist()

    res = run_spmd(program8, 2, machine=INTER)
    assert res.returns[0] == [0b1100, 0b0011, 0b1100]


def test_accumulate_min_fallback_path():
    """MPI_MIN has no NIC AMO: takes the lock-get-modify-put protocol."""
    def program(ctx):
        win = yield from ctx.rma.win_allocate(256, disp_unit=8)
        win.local_view(np.int64)[:4] = [10, -5, 7, 100]
        yield from win.fence()
        if ctx.rank == 1:
            vals = np.array([3, 0, 50, -2], dtype=np.int64)
            yield from win.accumulate(vals, 0, 0, Op.MIN)
        yield from win.fence()
        return win.local_view(np.int64)[:4].tolist()

    res = run_spmd(program, 2, machine=INTER)
    assert res.returns[0] == [3, -5, 7, -2]


def test_accumulate_float_takes_fallback():
    def program(ctx):
        win = yield from ctx.rma.win_allocate(256, disp_unit=8)
        yield from win.fence()
        vals = np.array([0.5, 1.25], dtype=np.float64)
        yield from win.accumulate(vals, 0, 0, Op.SUM)
        yield from win.fence()
        return win.local_view(np.float64)[:2].tolist()

    res = run_spmd(program, 3, machine=INTER)
    assert res.returns[0] == [1.5, 3.75]


def test_fallback_is_atomic_under_contention():
    """All ranks MIN-accumulate concurrently; the internal lock must
    serialize read-modify-write cycles (no lost updates)."""
    p, iters = 4, 3

    def program(ctx):
        win = yield from ctx.rma.win_allocate(64, disp_unit=8)
        win.local_view(np.float64)[0] = 0.0
        yield from win.fence()
        for i in range(iters):
            yield from win.accumulate(np.array([1.0]), 0, 0, Op.SUM)
        yield from win.fence()
        return win.local_view(np.float64)[0]

    res = run_spmd(program, p, machine=INTER)
    assert res.returns[0] == p * iters


def test_get_accumulate_returns_old():
    def program(ctx):
        win = yield from ctx.rma.win_allocate(64, disp_unit=8)
        win.local_view(np.int64)[0] = 100
        yield from win.fence()
        old = None
        if ctx.rank == 1:
            old = yield from win.get_accumulate(np.array([5], np.int64),
                                                0, 0, Op.SUM)
        yield from win.fence()
        return (None if old is None else int(old[0]),
                int(win.local_view(np.int64)[0]))

    res = run_spmd(program, 2, machine=INTER)
    assert res.returns[1][0] == 100   # fetched pre-update value
    assert res.returns[0][1] == 105   # target updated


def test_fetch_and_op_serializes():
    """Concurrent fetch-and-add must hand out unique tickets -- this is
    the hashtable's next-free-slot pattern."""
    p = 6

    def program(ctx):
        win = yield from ctx.rma.win_allocate(64, disp_unit=8)
        yield from win.fence()
        old = yield from win.fetch_and_op(np.int64(1), 0, 0, Op.SUM)
        yield from win.fence()
        return int(old)

    res = run_spmd(program, p, machine=INTER)
    assert sorted(res.returns) == list(range(p))


def test_compare_and_swap():
    def program(ctx):
        win = yield from ctx.rma.win_allocate(64, disp_unit=8)
        yield from win.fence()
        old = yield from win.compare_and_swap(np.int64(0), np.int64(ctx.rank + 1),
                                              0, 0)
        yield from win.fence()
        winner = int(win.local_view(np.int64)[0]) if ctx.rank == 0 else None
        return int(old), winner

    res = run_spmd(program, 4, machine=INTER)
    olds = [r[0] for r in res.returns]
    assert olds.count(0) == 1          # exactly one CAS won
    winner_val = res.returns[0][1]
    assert winner_val == olds.index(0) + 1


def test_cas_latency_matches_paper():
    """P_CAS = 2.4 us (Figure 6a)."""
    def program(ctx):
        win = yield from ctx.rma.win_allocate(64, disp_unit=8)
        yield from win.lock_all()
        t0 = ctx.now
        if ctx.rank == 0:
            yield from win.compare_and_swap(np.int64(0), np.int64(1), 1, 0)
        dt = ctx.now - t0
        yield from win.unlock_all()
        yield from ctx.coll.barrier()
        return dt

    res = run_spmd(program, 2, machine=INTER)
    assert 2000 <= res.returns[0] <= 2900, res.returns[0]


def test_accumulate_stream_rate_matches_paper():
    """P_acc,sum ~ 28 ns/element + 2.4 us."""
    def timed(n):
        def program(ctx):
            win = yield from ctx.rma.win_allocate(1 << 21, disp_unit=8)
            yield from win.lock_all()
            t0 = ctx.now
            if ctx.rank == 0:
                vals = np.ones(n, dtype=np.int64)
                yield from win.accumulate(vals, 1, 0, Op.SUM)
                yield from win.flush(1)
            dt = ctx.now - t0
            yield from win.unlock_all()
            yield from ctx.coll.barrier()
            return dt

        return run_spmd(program, 2, machine=INTER).returns[0]

    t1, t4096 = timed(1), timed(4096)
    per_elem = (t4096 - t1) / 4095
    assert 20 <= per_elem <= 40, per_elem      # ~28 ns/elem
    assert 2000 <= t1 <= 3200, t1              # ~2.4 us base


def test_min_fallback_beats_sum_stream_at_large_counts():
    """Figure 6a crossover: the locked protocol has higher base cost but
    put/get bandwidth, so it wins for large element counts."""
    n = 1 << 15

    def program(ctx):
        win = yield from ctx.rma.win_allocate(n * 8 + 64, disp_unit=8)
        yield from win.lock_all()
        out = {}
        if ctx.rank == 0:
            vals = np.ones(n, dtype=np.int64)
            t0 = ctx.now
            yield from win.accumulate(vals, 1, 0, Op.SUM)
            yield from win.flush(1)
            out["sum"] = ctx.now - t0
            t0 = ctx.now
            yield from win.accumulate(vals, 1, 0, Op.MIN)
            yield from win.flush(1)
            out["min"] = ctx.now - t0
        yield from win.unlock_all()
        yield from ctx.coll.barrier()
        return out

    res = run_spmd(program, 2, machine=INTER)
    out = res.returns[0]
    assert out["min"] < out["sum"]
