"""MPI-3 epoch rules: misuse must raise the right errors."""

import numpy as np
import pytest

from repro import run_spmd
from repro.config import MachineConfig
from repro.errors import EpochError, LockError
from repro.rma.enums import LockType

INTER = MachineConfig(ranks_per_node=1)


def _two_rank(program):
    return run_spmd(program, 2, machine=INTER)


def test_complete_without_start():
    def program(ctx):
        win = yield from ctx.rma.win_allocate(64)
        with pytest.raises(EpochError):
            yield from win.complete()
        yield from ctx.coll.barrier()

    _two_rank(program)


def test_wait_without_post():
    def program(ctx):
        win = yield from ctx.rma.win_allocate(64)
        with pytest.raises(EpochError):
            yield from win.wait()
        yield from ctx.coll.barrier()

    _two_rank(program)


def test_double_post_rejected():
    def program(ctx):
        win = yield from ctx.rma.win_allocate(64)
        if ctx.rank == 0:
            yield from win.post([1])
            with pytest.raises(EpochError):
                yield from win.post([1])
            yield from ctx.coll.barrier()
            yield from win.wait()
        else:
            yield from ctx.coll.barrier()
            yield from win.start([0])
            yield from win.complete()

    _two_rank(program)


def test_post_to_self_rejected():
    def program(ctx):
        win = yield from ctx.rma.win_allocate(64)
        with pytest.raises(EpochError):
            yield from win.post([ctx.rank])
        yield from ctx.coll.barrier()

    _two_rank(program)


def test_start_during_lock_epoch_rejected():
    def program(ctx):
        win = yield from ctx.rma.win_allocate(64)
        if ctx.rank == 0:
            yield from win.lock(1, LockType.SHARED)
            with pytest.raises(EpochError):
                yield from win.start([1])
            yield from win.unlock(1)
        yield from ctx.coll.barrier()

    _two_rank(program)


def test_lock_during_pscw_rejected():
    def program(ctx):
        win = yield from ctx.rma.win_allocate(64)
        if ctx.rank == 0:
            yield from ctx.coll.barrier()
            yield from win.start([1])
            with pytest.raises(LockError):
                yield from win.lock(1)
            yield from win.complete()
        else:
            yield from win.post([0])
            yield from ctx.coll.barrier()
            yield from win.wait()

    _two_rank(program)


def test_flush_outside_epoch_rejected():
    def program(ctx):
        win = yield from ctx.rma.win_allocate(64)
        with pytest.raises(EpochError):
            yield from win.flush(0)
        yield from ctx.coll.barrier()

    _two_rank(program)


def test_unlock_all_without_lock_all():
    def program(ctx):
        win = yield from ctx.rma.win_allocate(64)
        with pytest.raises(LockError):
            yield from win.unlock_all()
        yield from ctx.coll.barrier()

    _two_rank(program)


def test_double_lock_all():
    def program(ctx):
        win = yield from ctx.rma.win_allocate(64)
        yield from win.lock_all()
        with pytest.raises(LockError):
            yield from win.lock_all()
        yield from win.unlock_all()
        yield from ctx.coll.barrier()

    _two_rank(program)


def test_free_while_locked_rejected():
    from repro.errors import RmaError

    def program(ctx):
        win = yield from ctx.rma.win_allocate(64)
        yield from win.lock_all()
        with pytest.raises(RmaError):
            yield from win.free()
        yield from win.unlock_all()
        yield from ctx.coll.barrier()

    _two_rank(program)


def test_accumulate_requires_epoch():
    def program(ctx):
        win = yield from ctx.rma.win_allocate(64, disp_unit=8)
        with pytest.raises(EpochError):
            yield from win.accumulate(np.ones(1, np.int64), 0, 0)
        with pytest.raises(EpochError):
            yield from win.fetch_and_op(np.int64(1), 0, 0)
        with pytest.raises(EpochError):
            yield from win.compare_and_swap(np.int64(0), np.int64(1), 0, 0)
        yield from ctx.coll.barrier()

    _two_rank(program)


def test_pscw_matching_list_overflow():
    """More concurrent posts than the ring capacity must fail loudly --
    the paper's protocol assumes a known bound k."""
    from repro.errors import RmaError
    from repro.rma.params import FompiParams

    params = FompiParams(pscw_ring_capacity=2)

    def program(ctx):
        ctx.rma.params = params
        win = yield from ctx.rma.win_allocate(64)
        if ctx.rank == 0:
            yield from ctx.compute(50_000)  # let posters overflow rank 0
            yield from ctx.coll.barrier()
        else:
            try:
                yield from win.post([0])
                yield from ctx.coll.barrier()
            except RmaError:
                # overflow surfaces at the poster's NIC operation
                yield from ctx.coll.barrier()
            return None

    # 4 posters > capacity 2: the simulation must raise somewhere
    from repro.errors import RmaError as R
    with pytest.raises(R):
        run_spmd(program, 5, machine=INTER)


def test_epoch_states_reset_after_cycle():
    def program(ctx):
        win = yield from ctx.rma.win_allocate(64)
        for _ in range(3):  # repeated lock cycles are clean
            yield from win.lock_all()
            yield from win.unlock_all()
        assert win.epoch_access is None
        yield from win.fence()
        assert win.epoch_access == "fence"
        yield from ctx.coll.barrier()

    _two_rank(program)
