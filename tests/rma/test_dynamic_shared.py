"""Dynamic windows (attach/detach + descriptor cache) and shared windows."""

import numpy as np
import pytest

from repro import run_spmd
from repro.config import MachineConfig
from repro.errors import RegistrationError, WindowError

INTER = MachineConfig(ranks_per_node=1)
INTRA = MachineConfig(ranks_per_node=64)


def test_dynamic_attach_put_get():
    def program(ctx):
        win = yield from ctx.rma.win_create_dynamic()
        seg = ctx.space.alloc(256, label="region")
        yield from win.attach(seg)
        vaddrs = yield from ctx.coll.allgather(seg.vaddr)
        yield from win.lock_all()
        if ctx.rank == 0:
            yield from win.put(np.full(8, 77, np.uint8), 1, vaddrs[1])
            yield from win.flush(1)
        yield from win.unlock_all()
        yield from ctx.coll.barrier()
        return int(seg.read(0, 1)[0])

    res = run_spmd(program, 2, machine=INTER)
    assert res.returns[1] == 77


def test_dynamic_cache_hit_after_first_access():
    def program(ctx):
        win = yield from ctx.rma.win_create_dynamic()
        seg = ctx.space.alloc(256)
        yield from win.attach(seg)
        vaddrs = yield from ctx.coll.allgather(seg.vaddr)
        yield from win.lock_all()
        if ctx.rank == 0:
            for i in range(5):
                yield from win.put(np.full(8, i, np.uint8), 1, vaddrs[1])
            yield from win.flush(1)
        yield from win.unlock_all()
        yield from ctx.coll.barrier()
        return (win.dyn.cache_misses, win.dyn.cache_hits)

    res = run_spmd(program, 2, machine=INTER)
    misses, hits = res.returns[0]
    assert misses == 1 and hits == 4


def test_dynamic_detach_invalidates_remote_cache():
    def program(ctx):
        win = yield from ctx.rma.win_create_dynamic()
        seg = ctx.space.alloc(256)
        desc = yield from win.attach(seg)
        vaddrs = yield from ctx.coll.allgather(seg.vaddr)
        yield from win.lock_all()
        if ctx.rank == 0:
            yield from win.put(np.full(8, 1, np.uint8), 1, vaddrs[1])
            yield from win.flush(1)
        yield from win.unlock_all()
        yield from ctx.coll.barrier()
        # Target detaches and re-attaches a new region at a new address.
        new_vaddr = None
        if ctx.rank == 1:
            yield from win.detach(desc)
            seg2 = ctx.space.alloc(256)
            yield from win.attach(seg2)
            new_vaddr = seg2.vaddr
        new_vaddrs = yield from ctx.coll.allgather(new_vaddr)
        yield from ctx.coll.barrier()
        yield from win.lock_all()
        ok = None
        if ctx.rank == 0:
            # Old address must now fail; new address must work after the
            # id-counter check forces a cache refresh.
            try:
                yield from win.put(np.full(8, 2, np.uint8), 1, vaddrs[1])
                ok = False
            except WindowError:
                ok = True
            yield from win.put(np.full(8, 3, np.uint8), 1, new_vaddrs[1])
            yield from win.flush(1)
        yield from win.unlock_all()
        yield from ctx.coll.barrier()
        return ok, win.dyn.cache_misses if ctx.rank == 0 else None

    res = run_spmd(program, 2, machine=INTER)
    ok, misses = res.returns[0]
    assert ok is True
    assert misses >= 2  # initial load + refresh after detach


def test_dynamic_detach_unknown_region_raises():
    def program(ctx):
        win = yield from ctx.rma.win_create_dynamic()
        seg = ctx.space.alloc(64)
        desc = yield from win.attach(seg)
        yield from win.detach(desc)
        with pytest.raises(WindowError):
            yield from win.detach(desc)
        yield from ctx.coll.barrier()

    run_spmd(program, 2, machine=INTER)


def test_dynamic_access_unattached_raises():
    def program(ctx):
        win = yield from ctx.rma.win_create_dynamic()
        yield from win.lock_all()
        if ctx.rank == 0:
            with pytest.raises(WindowError):
                yield from win.put(np.zeros(8, np.uint8), 1, 0x3000_0000_0000)
        yield from win.unlock_all()
        yield from ctx.coll.barrier()

    run_spmd(program, 2, machine=INTER)


def test_shared_window_direct_access():
    def program(ctx):
        win = yield from ctx.rma.win_allocate_shared(64)
        win.local_view(np.int64)[0] = ctx.rank + 1
        yield from win.fence()
        out = np.zeros(1, np.int64)
        yield from win.get(out, (ctx.rank + 1) % ctx.nranks, 0)
        yield from win.fence()
        return int(out[0])

    res = run_spmd(program, 4, machine=INTRA)
    assert res.returns == [2, 3, 4, 1]


def test_shared_window_query_offsets():
    def program(ctx):
        win = yield from ctx.rma.win_allocate_shared(128)
        seg, off = win.shared_query(ctx.nranks - 1)
        return off

    res = run_spmd(program, 4, machine=INTRA)
    assert res.returns[0] == 3 * 128


def test_shared_window_rejects_multi_node():
    def program(ctx):
        with pytest.raises(WindowError):
            yield from ctx.rma.win_allocate_shared(64)
        yield from ctx.coll.barrier()

    run_spmd(program, 2, machine=INTER)


def test_xpmem_attach_rejects_off_node():
    def program(ctx):
        seg = ctx.space.alloc(64)
        token = ctx.xpmem.expose(seg)
        tokens = yield from ctx.coll.allgather(token)
        if ctx.rank == 0:
            with pytest.raises(RegistrationError):
                ctx.xpmem.attach(tokens[1])
        yield from ctx.coll.barrier()

    run_spmd(program, 2, machine=INTER)
