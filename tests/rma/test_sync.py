"""Synchronization protocols: fence, PSCW, locks, flush."""

import numpy as np
import pytest

from repro import run_spmd
from repro.config import MachineConfig
from repro.errors import EpochError, LockError
from repro.rma.enums import LockType
from repro.rma.locks import GLOBAL_SHARED_UNIT, WRITER_BIT
from repro.rma.window import IDX_GLOBAL_LOCK, IDX_LOCAL_LOCK

INTER = MachineConfig(ranks_per_node=1)


# ---------------------------------------------------------------------------
# fence
# ---------------------------------------------------------------------------
def test_fence_orders_puts():
    def program(ctx):
        win = yield from ctx.rma.win_allocate(64)
        yield from win.fence()
        if ctx.rank == 0:
            yield from win.put(np.full(8, 7, np.uint8), 1, 0)
        yield from win.fence()
        return int(win.local_view()[0])

    res = run_spmd(program, 2, machine=INTER)
    assert res.returns[1] == 7


def test_fence_scales_logarithmically():
    times = {}
    for p in (2, 8, 32):
        def program(ctx):
            win = yield from ctx.rma.win_allocate(64)
            yield from win.fence()
            t0 = ctx.now
            yield from win.fence()
            return ctx.now - t0

        res = run_spmd(program, p, machine=INTER)
        times[p] = max(res.returns)
    # log2(32)/log2(2) = 5: expect ~5x, definitely < 10x (not linear: 16x)
    assert times[32] < times[2] * 10
    assert times[8] > times[2]


# ---------------------------------------------------------------------------
# PSCW
# ---------------------------------------------------------------------------
def test_pscw_ring_exchange():
    p = 6

    def program(ctx):
        win = yield from ctx.rma.win_allocate(256)
        left = (ctx.rank - 1) % p
        right = (ctx.rank + 1) % p
        win.local_view(np.int64)[0] = ctx.rank * 100
        yield from win.post([left, right])
        yield from win.start([left, right])
        out = np.zeros(1, np.int64)
        yield from win.get(out, right, 0)
        yield from win.flush(right)
        yield from win.complete()
        yield from win.wait()
        return int(out[0])

    res = run_spmd(program, p, machine=INTER)
    assert res.returns == [((r + 1) % p) * 100 for r in range(p)]


def test_pscw_put_visible_after_wait():
    def program(ctx):
        win = yield from ctx.rma.win_allocate(64)
        if ctx.rank == 0:
            yield from win.start([1])
            yield from win.put(np.full(8, 5, np.uint8), 1, 0)
            yield from win.complete()
            yield from ctx.coll.barrier()
            return None
        yield from win.post([0])
        yield from win.wait()
        val = int(win.local_view()[0])
        yield from ctx.coll.barrier()
        return val

    res = run_spmd(program, 2, machine=INTER)
    assert res.returns[1] == 5


def test_pscw_start_blocks_until_post():
    """start() must wait for the matching post (paper Section 2.5b)."""
    def program(ctx):
        win = yield from ctx.rma.win_allocate(64)
        if ctx.rank == 0:
            t0 = ctx.now
            yield from win.start([1])
            waited = ctx.now - t0
            yield from win.complete()
            return waited
        yield from ctx.compute(50_000)  # post arrives late
        yield from win.post([0])
        yield from win.wait()
        return None

    res = run_spmd(program, 2, machine=INTER)
    assert res.returns[0] > 40_000


def test_pscw_multiple_epochs_match_in_order():
    """Figure 2a: two distinct matches from one origin."""
    def program(ctx):
        win = yield from ctx.rma.win_allocate(64)
        if ctx.rank == 0:
            yield from win.start([1, 2])
            yield from win.put(np.full(1, 11, np.uint8), 1, 0)
            yield from win.put(np.full(1, 12, np.uint8), 2, 0)
            yield from win.complete()
            yield from win.start([3])
            yield from win.put(np.full(1, 13, np.uint8), 3, 0)
            yield from win.complete()
            yield from ctx.coll.barrier()
            return None
        yield from win.post([0])
        yield from win.wait()
        val = int(win.local_view()[0])
        yield from ctx.coll.barrier()
        return val

    res = run_spmd(program, 4, machine=INTER)
    assert res.returns[1:] == [11, 12, 13]


def test_pscw_access_restricted_to_group():
    def prog(ctx):
        win = yield from ctx.rma.win_allocate(64)
        if ctx.rank == 0:
            yield from win.start([1])
            with pytest.raises(EpochError):
                yield from win.put(np.zeros(1, np.uint8), 2, 0)
            yield from win.complete()
        elif ctx.rank == 1:
            yield from win.post([0])
            yield from win.wait()
        yield from ctx.coll.barrier()

    run_spmd(prog, 3, machine=INTER)


def test_pscw_message_complexity_is_o_k():
    """post+complete issue O(k) network ops, start/wait zero (paper)."""
    from repro.runtime.job import Job, run_on_world

    counts = {}
    for p in (4, 8):
        job = Job(nranks=p, machine=INTER)
        world = job.build_world()

        def program(ctx):
            win = yield from ctx.rma.win_allocate(64)
            yield from ctx.coll.barrier()
            base = dict(world.counters.remote_ops)
            left, right = (ctx.rank - 1) % ctx.nranks, (ctx.rank + 1) % ctx.nranks
            yield from win.post([left, right])
            yield from win.start([left, right])
            yield from win.complete()
            yield from win.wait()
            return world.counters.remote_ops[ctx.rank] - base.get(ctx.rank, 0)

        res = run_on_world(world, program)
        counts[p] = max(res.returns)
    # k=2 for both sizes: per-rank op count must not grow with p
    assert counts[8] == counts[4]
    assert counts[4] <= 8  # 2 posts + 2 completes (+ slack)


# ---------------------------------------------------------------------------
# locks
# ---------------------------------------------------------------------------
def test_lock_put_unlock_roundtrip():
    def program(ctx):
        win = yield from ctx.rma.win_allocate(64)
        if ctx.rank == 0:
            yield from win.lock(1, LockType.EXCLUSIVE)
            yield from win.put(np.full(4, 9, np.uint8), 1, 0)
            yield from win.unlock(1)
        yield from ctx.coll.barrier()
        return int(win.local_view()[0])

    res = run_spmd(program, 2, machine=INTER)
    assert res.returns[1] == 9


def test_exclusive_locks_mutually_exclude():
    """Two writers increment a non-atomic counter under exclusive locks;
    without mutual exclusion updates would be lost."""
    N = 5

    def program(ctx):
        win = yield from ctx.rma.win_allocate(64)
        yield from ctx.coll.barrier()
        if ctx.rank in (0, 1):
            for _ in range(N):
                yield from win.lock(2, LockType.EXCLUSIVE)
                cur = np.zeros(1, np.int64)
                yield from win.get(cur, 2, 0)
                yield from win.flush(2)
                cur += 1
                yield from win.put(cur, 2, 0)
                yield from win.unlock(2)
        yield from ctx.coll.barrier()
        return int(win.local_view(np.int64)[0])

    res = run_spmd(program, 3, machine=INTER)
    assert res.returns[2] == 2 * N


def test_shared_locks_allow_concurrency():
    def program(ctx):
        win = yield from ctx.rma.win_allocate(64)
        win.local_view(np.int64)[0] = 42
        yield from ctx.coll.barrier()
        if ctx.rank != 2:
            yield from win.lock(2, LockType.SHARED)
            out = np.zeros(1, np.int64)
            yield from win.get(out, 2, 0)
            yield from win.flush(2)
            # both readers hold the lock here; reader count visible
            yield from ctx.compute(1)
            yield from win.unlock(2)
            return int(out[0])
        yield from ctx.compute(1)
        return None

    res = run_spmd(program, 3, machine=INTER)
    assert res.returns[0] == 42 and res.returns[1] == 42


def test_lock_all_excludes_exclusive():
    """A lock_all epoch delays an exclusive lock (Figure 3c schedule)."""
    def program(ctx):
        win = yield from ctx.rma.win_allocate(64)
        yield from ctx.coll.barrier()
        if ctx.rank == 1:
            yield from win.lock_all()
            hold_until = ctx.now + 30_000
            yield from ctx.compute(30_000)
            yield from win.unlock_all()
            return hold_until
        if ctx.rank == 2:
            yield from ctx.compute(5_000)  # let rank 1 grab lock_all first
            yield from win.lock(0, LockType.EXCLUSIVE)
            acquired_at = ctx.now
            yield from win.unlock(0)
            return acquired_at
        return None

    res = run_spmd(program, 3, machine=INTER)
    hold_until, acquired_at = res.returns[1], res.returns[2]
    assert acquired_at > hold_until  # exclusive waited for lock_all to end


def test_lock_word_encoding():
    """Check the Figure 3a bit layout directly."""
    from repro.runtime.job import Job, run_on_world

    job = Job(nranks=3, machine=INTER)
    world = job.build_world()
    observed = {}

    def program(ctx):
        win = yield from ctx.rma.win_allocate(64)
        yield from ctx.coll.barrier()
        if ctx.rank == 0:
            yield from win.lock(2, LockType.SHARED)
            observed["shared"] = win.ctrl_refs[2].load(IDX_LOCAL_LOCK)
            yield from win.unlock(2)
            yield from ctx.coll.barrier()
            yield from win.lock(2, LockType.EXCLUSIVE)
            observed["excl_local"] = win.ctrl_refs[2].load(IDX_LOCAL_LOCK)
            observed["excl_global"] = win.ctrl_refs[0].load(IDX_GLOBAL_LOCK)
            yield from win.unlock(2)
        else:
            yield from ctx.coll.barrier()
        yield from ctx.coll.barrier()
        if ctx.rank == 1:
            yield from win.lock_all()
            observed["lockall_global"] = win.ctrl_refs[0].load(IDX_GLOBAL_LOCK)
            yield from win.unlock_all()
        yield from ctx.coll.barrier()

    run_on_world(world, program)
    assert observed["shared"] == 1                      # one reader
    assert observed["excl_local"] == WRITER_BIT         # writer bit set
    assert observed["excl_global"] == 1                 # one excl holder
    assert observed["lockall_global"] == GLOBAL_SHARED_UNIT


def test_lock_errors():
    def program(ctx):
        win = yield from ctx.rma.win_allocate(64)
        with pytest.raises(LockError):
            yield from win.unlock(0)
        yield from win.lock(1, LockType.SHARED)
        with pytest.raises(LockError):
            yield from win.lock(1, LockType.SHARED)  # double lock
        with pytest.raises(LockError):
            yield from win.lock_all()  # lock_all during lock epoch
        yield from win.unlock(1)
        yield from ctx.coll.barrier()

    run_spmd(program, 2, machine=INTER)


def test_flush_guarantees_remote_completion():
    def program(ctx):
        win = yield from ctx.rma.win_allocate(64)
        yield from ctx.coll.barrier()
        if ctx.rank == 0:
            yield from win.lock(1, LockType.EXCLUSIVE)
            yield from win.put(np.full(8, 3, np.uint8), 1, 0)
            yield from win.flush(1)
            # after flush the data must already be at the target
            assert ctx.world.spaces[1].segments  # target memory written
            out = np.zeros(8, np.uint8)
            yield from win.get(out, 1, 0)
            yield from win.flush(1)
            yield from win.unlock(1)
            return out.tolist()
        yield from ctx.compute(1)
        return None

    res = run_spmd(program, 2, machine=INTER)
    assert res.returns[0] == [3] * 8


def test_unlock_without_outstanding_is_cheap():
    """Measured P_unlock = 0.4 us: fire-and-forget AMO."""
    def program(ctx):
        win = yield from ctx.rma.win_allocate(64)
        yield from ctx.coll.barrier()
        if ctx.rank == 0:
            yield from win.lock(1, LockType.SHARED)
            t0 = ctx.now
            yield from win.unlock(1)
            return ctx.now - t0
        return None

    res = run_spmd(program, 2, machine=INTER)
    assert res.returns[0] < 1000  # well under one AMO round trip
