"""Window creation + basic put/get across flavors and transports."""

import numpy as np
import pytest

from repro import run_spmd
from repro.config import MachineConfig
from repro.errors import EpochError, WindowError
from repro.rma.enums import WinFlavor

INTER = MachineConfig(ranks_per_node=1)   # all ranks on distinct nodes
INTRA = MachineConfig(ranks_per_node=64)  # all ranks on one node


def _fence_put_get(ctx, make_win):
    win = yield from make_win(ctx)
    yield from win.fence()
    data = (np.arange(32, dtype=np.uint8) + ctx.rank * 10)
    target = (ctx.rank + 1) % ctx.nranks
    yield from win.put(data, target, 0)
    yield from win.fence()
    local = win.local_view()[:32].copy()
    out = np.zeros(32, dtype=np.uint8)
    yield from win.get(out, target, 0)
    yield from win.fence()
    return local.tolist(), out.tolist()


@pytest.mark.parametrize("cfg", [INTER, INTRA], ids=["inter", "intra"])
def test_allocate_put_get(cfg):
    def make(ctx):
        return ctx.rma.win_allocate(4096)

    def program(ctx):
        return (yield from _fence_put_get(ctx, make))

    res = run_spmd(program, 4, machine=cfg)
    for rank, (local, got) in enumerate(res.returns):
        src = (rank - 1) % 4
        assert local == [(i + src * 10) % 256 for i in range(32)]
        # the get reads back what this rank put at its target
        assert got == [(i + rank * 10) % 256 for i in range(32)]


@pytest.mark.parametrize("cfg", [INTER, INTRA], ids=["inter", "intra"])
def test_create_put_get(cfg):
    def make(ctx):
        seg = ctx.space.alloc(4096, label="user")
        return ctx.rma.win_create(seg)

    def program(ctx):
        return (yield from _fence_put_get(ctx, make))

    res = run_spmd(program, 4, machine=cfg)
    for rank, (local, got) in enumerate(res.returns):
        src = (rank - 1) % 4
        assert local == [(i + src * 10) % 256 for i in range(32)]


def test_allocate_is_symmetric():
    def program(ctx):
        win = yield from ctx.rma.win_allocate(1024)
        return win.base_vaddr

    res = run_spmd(program, 8)
    assert len(set(res.returns)) == 1  # same base address everywhere


def test_symheap_retry_on_collision():
    """Force the first two proposals to collide with existing mappings."""
    from repro.runtime.job import Job, run_on_world

    job = Job(nranks=4, machine=INTER)
    world = job.build_world()
    taken = []

    def interposer(attempt, addr):
        if attempt < 2:
            return taken[attempt]
        return addr

    world.blackboard["symheap_interposer"] = interposer

    def program(ctx):
        # Pre-occupy two ranges on rank 2 so MAP_FIXED fails there.
        if ctx.rank == 2 and not taken:
            for _ in range(2):
                seg = ctx.space.alloc(1 << 16)
                taken.append(seg.vaddr)
        yield from ctx.coll.barrier()
        win = yield from ctx.rma.win_allocate(4096)
        return win.base_vaddr

    res = run_on_world(world, program)
    assert len(set(res.returns)) == 1
    assert res.returns[0] not in taken


def test_allocate_control_memory_constant_create_linear():
    """The paper's central memory claim: allocated windows need O(1)
    control state; traditional windows need Omega(p) descriptors."""
    sizes = {}
    for p in (4, 16):
        def program(ctx):
            wa = yield from ctx.rma.win_allocate(256)
            seg = ctx.space.alloc(256)
            wc = yield from ctx.rma.win_create(seg)
            return wa.control_words(), wc.control_words()

        res = run_spmd(program, p, machine=INTER)
        sizes[p] = res.returns[0]
    alloc4, create4 = sizes[4]
    alloc16, create16 = sizes[16]
    assert alloc4 == alloc16                      # O(1)
    assert create16 - create4 == 12               # Omega(p): +1 word/rank


def test_put_outside_epoch_raises():
    def program(ctx):
        win = yield from ctx.rma.win_allocate(64)
        with pytest.raises(EpochError):
            yield from win.put(np.zeros(8, np.uint8), (ctx.rank + 1) % 2, 0)
        yield from ctx.coll.barrier()

    run_spmd(program, 2, machine=INTER)


def test_put_out_of_range_raises():
    from repro.errors import MemoryError_

    def program(ctx):
        win = yield from ctx.rma.win_allocate(64)
        yield from win.fence()
        if ctx.rank == 0:
            with pytest.raises(MemoryError_):
                yield from win.put(np.zeros(128, np.uint8), 1, 0)
        yield from win.fence()

    run_spmd(program, 2, machine=INTER)


def test_freed_window_rejects_ops():
    def program(ctx):
        win = yield from ctx.rma.win_allocate(64)
        yield from win.free()
        with pytest.raises(WindowError):
            yield from win.fence()

    run_spmd(program, 2, machine=INTER)


def test_disp_unit_scales_offsets():
    def program(ctx):
        win = yield from ctx.rma.win_allocate(64 * 8, disp_unit=8)
        yield from win.fence()
        if ctx.rank == 0:
            vals = np.array([123], dtype=np.int64)
            yield from win.put(vals, 1, 5)  # element displacement 5
        yield from win.fence()
        return int(win.local_view(np.int64)[5])

    res = run_spmd(program, 2, machine=INTER)
    assert res.returns[1] == 123


def test_rput_rget_requests():
    def program(ctx):
        win = yield from ctx.rma.win_allocate(256)
        yield from win.lock_all()
        if ctx.rank == 0:
            req = yield from win.rput(np.full(16, 9, np.uint8), 1, 0)
            yield from req.wait()
            out = np.zeros(16, np.uint8)
            req = yield from win.rget(out, 1, 0)
            yield from req.wait()
            yield from win.unlock_all()
            return out.tolist()
        yield from win.unlock_all()
        yield from ctx.coll.barrier()
        return None

    def program0(ctx):
        return (yield from program(ctx))

    # rank 1 must not exit before rank 0 reads; add a barrier on both sides
    def program_sync(ctx):
        win = yield from ctx.rma.win_allocate(256)
        yield from win.lock_all()
        out = None
        if ctx.rank == 0:
            req = yield from win.rput(np.full(16, 9, np.uint8), 1, 0)
            yield from req.wait()
            buf = np.zeros(16, np.uint8)
            req = yield from win.rget(buf, 1, 0)
            out = yield from req.wait()
        yield from win.unlock_all()
        yield from ctx.coll.barrier()
        return None if out is None else out.tolist()

    res = run_spmd(program_sync, 2, machine=INTER)
    assert res.returns[0] == [9] * 16


def test_window_local_view_roundtrip():
    def program(ctx):
        win = yield from ctx.rma.win_allocate(128)
        win.local_view(np.int64)[:4] = [1, 2, 3, 4]
        yield from win.fence()
        return win.local_view(np.int64)[:4].tolist()

    res = run_spmd(program, 2)
    assert res.returns[0] == [1, 2, 3, 4]


def test_flavor_tags():
    def program(ctx):
        wa = yield from ctx.rma.win_allocate(64)
        wd = yield from ctx.rma.win_create_dynamic()
        return wa.flavor, wd.flavor

    res = run_spmd(program, 2)
    assert res.returns[0] == (WinFlavor.ALLOCATE, WinFlavor.DYNAMIC)
