"""Derived datatype engine: block decomposition + typed communication."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import run_spmd
from repro.config import MachineConfig
from repro.errors import DatatypeError
from repro.rma.datatypes import (
    BYTE,
    DOUBLE,
    INT64,
    Contiguous,
    Hvector,
    Indexed,
    Struct,
    Vector,
    coalesce,
    zip_blocks,
)

INTER = MachineConfig(ranks_per_node=1)


# ---------------------------------------------------------------------------
# pure datatype algebra
# ---------------------------------------------------------------------------
def test_predefined_single_block():
    assert list(DOUBLE.blocks(4)) == [(0, 32)]
    assert DOUBLE.is_contiguous(16)


def test_contiguous_flattens():
    t = Contiguous(4, INT64)
    assert t.size == 32 and t.extent == 32
    assert list(t.blocks(2)) == [(0, 64)]


def test_vector_blocks():
    # 3 blocks of 2 doubles, stride 4 elements
    t = Vector(3, 2, 4, DOUBLE)
    assert t.size == 48
    assert list(t.blocks()) == [(0, 16), (32, 16), (64, 16)]


def test_vector_contiguous_when_stride_equals_blocklen():
    t = Vector(3, 2, 2, DOUBLE)
    assert list(t.blocks()) == [(0, 48)]  # coalesced to one block


def test_hvector_byte_stride():
    t = Hvector(2, 1, 24, INT64)
    assert list(t.blocks()) == [(0, 8), (24, 8)]


def test_indexed_blocks():
    t = Indexed([2, 1], [0, 5], INT64)
    assert t.size == 24
    assert list(t.blocks()) == [(0, 16), (40, 8)]


def test_struct_blocks():
    t = Struct([2, 4], [0, 16], [INT64, BYTE])
    assert t.size == 20
    assert list(t.blocks()) == [(0, 20)]  # adjacent: coalesced


def test_coalesce_merges_adjacent():
    assert list(coalesce([(0, 4), (4, 4), (12, 4)])) == [(0, 8), (12, 4)]
    assert list(coalesce([])) == []
    assert list(coalesce([(0, 0), (0, 4)])) == [(0, 4)]


def test_zip_blocks_alignment():
    o = [(0, 10), (20, 6)]
    t = [(100, 4), (200, 12)]
    assert list(zip_blocks(o, t)) == [
        (0, 100, 4), (4, 200, 6), (20, 206, 6)]


def test_zip_blocks_size_mismatch_raises():
    with pytest.raises(DatatypeError):
        list(zip_blocks([(0, 8)], [(0, 4)]))


@given(st.lists(st.tuples(st.integers(0, 100), st.integers(0, 16)),
                max_size=20))
def test_coalesce_preserves_total_bytes(blocks):
    total = sum(n for _, n in blocks)
    merged = list(coalesce(sorted(blocks)))
    # coalescing may merge overlapping inputs; with disjoint sorted input
    # totals are preserved -- build disjoint input:
    disjoint = []
    cursor = 0
    for _off, n in blocks:
        disjoint.append((cursor, n))
        cursor += n + 1
    merged = list(coalesce(disjoint))
    assert sum(n for _, n in merged) == total


@settings(max_examples=50)
@given(count=st.integers(1, 5), blocklen=st.integers(1, 4),
       stride=st.integers(1, 8))
def test_vector_size_invariant(count, blocklen, stride):
    stride = max(stride, blocklen)  # MPI requires non-overlapping here
    t = Vector(count, blocklen, stride, INT64)
    blocks = list(t.blocks())
    assert sum(n for _, n in blocks) == t.size == count * blocklen * 8
    # blocks are disjoint and sorted
    for (o1, n1), (o2, _n2) in zip(blocks, blocks[1:]):
        assert o1 + n1 <= o2


# ---------------------------------------------------------------------------
# typed communication
# ---------------------------------------------------------------------------
def test_put_strided_target():
    """Put a contiguous origin buffer into every other target element --
    a halo-exchange access pattern."""
    def program(ctx):
        win = yield from ctx.rma.win_allocate(256, disp_unit=1)
        yield from win.fence()
        if ctx.rank == 0:
            data = np.arange(4, dtype=np.int64) + 1
            tdt = Vector(4, 1, 2, INT64)
            yield from win.put(data, 1, 0, origin_datatype=Contiguous(4, INT64),
                               target_datatype=tdt, count=1)
        yield from win.fence()
        return win.local_view(np.int64)[:8].tolist()

    res = run_spmd(program, 2, machine=INTER)
    assert res.returns[1] == [1, 0, 2, 0, 3, 0, 4, 0]


def test_get_strided_origin():
    """Gather every other target element into a contiguous origin buffer."""
    def program(ctx):
        win = yield from ctx.rma.win_allocate(256)
        win.local_view(np.int64)[:8] = np.arange(8) * 10
        yield from win.fence()
        out = np.zeros(4, dtype=np.int64)
        if ctx.rank == 0:
            yield from win.get(out, 1, 0,
                               origin_datatype=Contiguous(4, INT64),
                               target_datatype=Vector(4, 1, 2, INT64),
                               count=1)
        yield from win.fence()
        return out.tolist()

    res = run_spmd(program, 2, machine=INTER)
    assert res.returns[0] == [0, 20, 40, 60]


def test_noncontiguous_issues_one_op_per_block():
    """Section 2.4: one DMAPP operation per contiguous block."""
    from repro.runtime.job import Job, run_on_world

    job = Job(nranks=2, machine=INTER)
    world = job.build_world()

    def program(ctx):
        win = yield from ctx.rma.win_allocate(4096)
        yield from win.fence()
        before = world.counters.by_kind.get("put", 0)
        nblocks = None
        if ctx.rank == 0:
            data = np.arange(8, dtype=np.int64)
            yield from win.put(data, 1, 0,
                               origin_datatype=Contiguous(8, INT64),
                               target_datatype=Vector(8, 1, 2, INT64),
                               count=1)
            nblocks = world.counters.by_kind.get("put", 0) - before
        yield from win.fence()
        return nblocks

    res = run_on_world(world, program)
    assert res.returns[0] == 8


def test_typed_put_roundtrip_matrix_transpose_pattern():
    """Column of a row-major matrix -> contiguous target (FFT packing)."""
    rows = cols = 4

    def program(ctx):
        win = yield from ctx.rma.win_allocate(rows * 8)
        yield from win.fence()
        if ctx.rank == 0:
            mat = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
            col_t = Vector(rows, 1, cols, INT64)
            yield from win.put(mat, 1, 0, origin_datatype=col_t,
                               target_datatype=Contiguous(rows, INT64),
                               count=1)
        yield from win.fence()
        return win.local_view(np.int64)[:rows].tolist()

    res = run_spmd(program, 2, machine=INTER)
    assert res.returns[1] == [0, 4, 8, 12]  # first column
